"""Observability: span tracing, metrics, and profiling exports.

``repro.obs`` makes the whole stack inspectable — not just *what* a sweep
or mission measured, but *where the cycles and nanojoules went* while it
ran.  Three cooperating pieces:

* **Tracer** (:mod:`repro.obs.tracer`) — ``span()`` context managers
  wrapping planner solves, trace-cache lookups, per-cell pricing,
  fault-campaign cells, and per-mission-step estimate/control phases.
  Zero overhead when disabled (the default): the no-op path allocates
  nothing.  Mission spans are stamped in *simulated* time, so a mission
  trace is byte-identical across runs.
* **Metrics** (:mod:`repro.obs.metrics`) — a registry of counters,
  gauges, and histograms (cache hit counts, solve latencies, per-arch
  energy totals, overruns), aggregated across process-pool workers by
  folding worker-returned records in canonical cell order — the result
  is identical for ``--jobs 1`` and ``--jobs N``.
* **Exporters** (:mod:`repro.obs.export`) — Chrome trace-event JSON
  (open in https://ui.perfetto.dev), a hottest-first text phase report,
  and JSONL metric dumps.

Typical use, mirroring ``repro trace`` / ``--trace``::

    import repro.obs as obs

    tracer, metrics = obs.observe()       # install enabled singletons
    results = run_sweep_engine(spec, options)
    print(obs.phase_report(tracer))
    obs.save_chrome_trace(tracer, "sweep.trace.json")
    obs.save_metrics_jsonl(metrics, "sweep.metrics.jsonl")
    obs.unobserve()                       # back to the free defaults

Enabling observation never changes results: the traced code paths are
read-only observers, asserted byte-identical in ``tests/test_obs.py``.
"""

from repro.obs.export import (
    phase_report,
    save_chrome_trace,
    save_metrics_jsonl,
    to_chrome_trace,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    get_metrics,
    reset_metrics,
    set_metrics,
)
from repro.obs.tracer import (
    NULL_TRACER,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
)

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_metrics",
    "get_tracer",
    "observe",
    "phase_report",
    "reset_metrics",
    "save_chrome_trace",
    "save_metrics_jsonl",
    "set_metrics",
    "set_tracer",
    "to_chrome_trace",
    "unobserve",
]


def observe():
    """Install fresh enabled tracer + metrics singletons.

    Returns:
        ``(tracer, metrics)`` — the newly installed
        :class:`~repro.obs.tracer.Tracer` and
        :class:`~repro.obs.metrics.MetricsRegistry`.
    """
    tracer = enable_tracing()
    metrics = set_metrics(MetricsRegistry(enabled=True))
    return tracer, metrics


def unobserve() -> None:
    """Restore the disabled defaults (tracing and metrics off)."""
    disable_tracing()
    reset_metrics()
