"""Exporters: Chrome trace-event JSON, text phase reports, metrics JSONL.

Three ways out of the observability layer:

* :func:`to_chrome_trace` / :func:`save_chrome_trace` — the Chrome
  trace-event format (JSON object with a ``traceEvents`` array), loadable
  in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  Tracks
  become thread rows; spans become complete (``X``) events; fault
  injections and cache hits become instants; counter samples become
  ``C`` events.  Timestamps are microseconds, rounded to nanosecond
  resolution so sim-time traces serialize byte-identically across runs.
* :func:`phase_report` — a terminal-friendly flame summary: one row per
  span name with call count, total / self / mean time, and the share of
  all self time, sorted hottest first.  This is what ``repro trace``
  prints.
* :func:`save_metrics_jsonl` — one JSON line per metric from a
  :class:`~repro.obs.metrics.MetricsRegistry`, sorted by type then name,
  for downstream ingestion (dashboards, CI diffing).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer

__all__ = [
    "to_chrome_trace",
    "save_chrome_trace",
    "phase_report",
    "save_metrics_jsonl",
]

PathLike = Union[str, Path]

#: Trace-format identity, recorded in the exported JSON's metadata.
TRACE_FORMAT = "chrome-trace-events"


def _us(seconds: float) -> float:
    """Seconds -> microseconds, rounded to ns so output is byte-stable."""
    return round(seconds * 1e6, 3)


def _track_ids(tracer: Tracer) -> Dict[str, int]:
    """Map track names to Chrome tids in first-appearance order."""
    ids: Dict[str, int] = {}
    for span in tracer.spans:
        ids.setdefault(span.track, len(ids))
    for instant in tracer.instants:
        ids.setdefault(instant["track"], len(ids))
    for counter in tracer.counters:
        ids.setdefault(counter["track"], len(ids))
    if not ids:
        ids["main"] = 0
    return ids


def _clean_args(args: dict) -> dict:
    """JSON-safe argument rendering (repr anything exotic)."""
    out = {}
    for key, value in args.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


def to_chrome_trace(tracer: Tracer, process_name: str = "repro") -> dict:
    """Render a tracer's recordings as a Chrome trace-event object.

    Args:
        tracer: The tracer whose spans / instants / counters to export.
        process_name: Name shown for the single exported process row.

    Returns:
        A dict with ``traceEvents`` (metadata + X/i/C events, ordered by
        track, then timestamp, then record sequence) plus
        ``displayTimeUnit`` and an ``otherData`` provenance block —
        ``json.dumps`` of it is a valid trace file.
    """
    tids = _track_ids(tracer)
    events: List[dict] = [
        {
            "ph": "M", "pid": 0, "tid": 0, "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for track, tid in tids.items():
        events.append({
            "ph": "M", "pid": 0, "tid": tid, "name": "thread_name",
            "args": {"name": track},
        })

    body: List[tuple] = []
    for span in tracer.spans:
        body.append((
            tids[span.track], _us(span.t0_s), 0, span.seq,
            {
                "ph": "X", "pid": 0, "tid": tids[span.track],
                "name": span.name, "cat": span.cat or "repro",
                "ts": _us(span.t0_s), "dur": _us(span.dur_s),
                "args": _clean_args(span.args),
            },
        ))
    for i, instant in enumerate(tracer.instants):
        body.append((
            tids[instant["track"]], _us(instant["t_s"]), 1, i,
            {
                "ph": "i", "pid": 0, "tid": tids[instant["track"]],
                "name": instant["name"], "cat": instant["cat"] or "repro",
                "ts": _us(instant["t_s"]), "s": "t",
                "args": _clean_args(instant["args"]),
            },
        ))
    for i, counter in enumerate(tracer.counters):
        body.append((
            tids[counter["track"]], _us(counter["t_s"]), 2, i,
            {
                "ph": "C", "pid": 0, "tid": tids[counter["track"]],
                "name": counter["name"], "ts": _us(counter["t_s"]),
                "args": {"value": counter["value"]},
            },
        ))
    body.sort(key=lambda item: item[:4])
    events.extend(item[4] for item in body)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format": TRACE_FORMAT,
            "spans": len(tracer.spans),
            "instants": len(tracer.instants),
            "counter_samples": len(tracer.counters),
        },
    }


def save_chrome_trace(
    tracer: Tracer, path: PathLike, process_name: str = "repro"
) -> Path:
    """Write :func:`to_chrome_trace` output to ``path``.

    Args:
        tracer: The tracer to export.
        path: Destination file (conventionally ``*.trace.json``).
        process_name: Name for the exported process row.

    Returns:
        The written path.
    """
    path = Path(path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(to_chrome_trace(tracer, process_name), indent=1) + "\n"
    )
    return path


def phase_report(tracer: Tracer, title: str = "phase report") -> str:
    """Aggregate spans by name into a hottest-first text table.

    Args:
        tracer: The tracer whose spans to summarize.
        title: Heading line for the report.

    Returns:
        A multi-line string: per-phase call count, total and self wall
        (or sim) milliseconds, mean microseconds per call, and each
        phase's share of all recorded self time, sorted by self time
        descending (record order breaks ties deterministically).
    """
    by_name: Dict[str, List[Span]] = {}
    order: List[str] = []
    for span in tracer.spans:
        if span.name not in by_name:
            by_name[span.name] = []
            order.append(span.name)
        by_name[span.name].append(span)

    rows = []
    total_self = 0.0
    for name in order:
        spans = by_name[name]
        total = sum(s.dur_s for s in spans)
        self_t = sum(s.self_s for s in spans)
        total_self += self_t
        rows.append((name, len(spans), total, self_t))
    rows.sort(key=lambda r: -r[3])

    lines = [
        f"{title} — {len(tracer.spans)} spans, "
        f"{len(rows)} phases, {total_self * 1e3:.3f} ms total self time",
        f"{'phase':28s} {'calls':>7s} {'total ms':>10s} {'self ms':>10s} "
        f"{'mean us':>10s} {'self %':>7s}",
        "-" * 78,
    ]
    for name, calls, total, self_t in rows:
        share = self_t / total_self if total_self > 0 else 0.0
        lines.append(
            f"{name:28s} {calls:7d} {total * 1e3:10.3f} {self_t * 1e3:10.3f} "
            f"{total / calls * 1e6:10.2f} {share:6.1%}"
        )
    if not rows:
        lines.append("(no spans recorded)")
    return "\n".join(lines)


def save_metrics_jsonl(registry: MetricsRegistry, path: PathLike) -> Path:
    """Write a registry as JSONL: one sorted line per metric.

    Args:
        registry: The metrics registry to dump.
        path: Destination file (conventionally ``*.metrics.jsonl``).

    Returns:
        The written path.
    """
    path = Path(path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    snapshot = registry.as_dict()
    lines = []
    for name, value in snapshot["counters"].items():
        lines.append({"metric": name, "type": "counter", "value": value})
    for name, value in snapshot["gauges"].items():
        lines.append({"metric": name, "type": "gauge", "value": value})
    for name, value in snapshot["histograms"].items():
        lines.append({"metric": name, "type": "histogram", **value})
    path.write_text(
        "".join(json.dumps(line, sort_keys=True) + "\n" for line in lines)
    )
    return path
