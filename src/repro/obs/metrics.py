"""Process-safe metrics registry: counters, gauges, histograms.

A :class:`MetricsRegistry` accumulates named metrics during a sweep,
mission, or fault campaign:

* **counters** — monotonically accumulated totals (``engine.solves``,
  ``engine.cache_hits``, ``mission.overruns``, per-arch energy totals);
* **gauges** — last-written values (``engine.jobs``, configuration
  echoes);
* **histograms** — value distributions kept as count / sum / min / max
  plus fixed log-decade bucket counts (solve latencies, per-cell priced
  latency and energy).

Process safety comes from the collation path, not from shared memory:
worker processes return plain records (kernel profiles, mission cell
dicts), and the parent derives or merges metrics **in canonical cell
order** while collating.  Because collation order is independent of
worker count and completion order, the aggregated registry is identical
for ``--jobs 1`` and ``--jobs N`` — floating-point sums included (summing
is order-dependent, so order is pinned).  Registries also support
:meth:`MetricsRegistry.merge` for explicit deterministic folding.

Naming convention (see ``docs/observability.md``): dotted lowercase
paths, ``<layer>.<what>[.<unit>]``; wall-clock-derived metrics end in
``wall_s`` so determinism checks can exclude them.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "reset_metrics",
]

#: Histogram bucket upper bounds: log decades covering sub-microsecond
#: latencies through multi-second solves (values in the metric's own
#: unit). The final implicit bucket is +inf.
DEFAULT_BUCKETS = (
    1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6,
)


@dataclass
class Histogram:
    """A fixed-bucket value distribution.

    Attributes:
        count: Number of observed values.
        sum: Sum of observed values (observation-order dependent in the
            last float bits — observe in deterministic order).
        min: Smallest observed value (``inf`` when empty).
        max: Largest observed value (``-inf`` when empty).
        buckets: Per-bucket observation counts; bucket ``i`` counts
            values ``<= DEFAULT_BUCKETS[i]``, with one extra overflow
            bucket for everything larger.
    """

    count: int = 0
    sum: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    buckets: List[int] = field(
        default_factory=lambda: [0] * (len(DEFAULT_BUCKETS) + 1)
    )

    def observe(self, value: float) -> None:
        """Add one value to the distribution."""
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(DEFAULT_BUCKETS):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observed values (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one."""
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (empty min/max render as None)."""
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "buckets": list(self.buckets),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        """Rebuild a histogram serialized by :meth:`as_dict`."""
        hist = cls(
            count=int(data["count"]),
            sum=float(data["sum"]),
            min=math.inf if data["min"] is None else float(data["min"]),
            max=-math.inf if data["max"] is None else float(data["max"]),
        )
        buckets = list(data["buckets"])
        hist.buckets = buckets + [0] * (len(DEFAULT_BUCKETS) + 1 - len(buckets))
        return hist


class MetricsRegistry:
    """Named counters, gauges, and histograms with deterministic export.

    Args:
        enabled: When False, every recording method is a cheap early
            return, so always-on call sites cost ~nothing by default.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        # Recording is read-modify-write; the service's shard dispatchers
        # increment one shared registry from N threads, so updates lock.
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at 0)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Add ``value`` to histogram ``name`` (creating it empty)."""
        if not self.enabled:
            return
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    @contextmanager
    def suspended(self) -> Iterator["MetricsRegistry"]:
        """Temporarily disable recording; restore on exit, exception-safe.

        The sanctioned seam for code that must run a sub-computation
        without observing it (campaign drivers re-running mission jobs
        inline must not double-count worker-path metrics).  Using this
        instead of toggling :attr:`enabled` by hand keeps the restore
        exception-safe and identical across ``--jobs`` modes — which is
        what the ``worker-shared-state`` lint rule enforces.
        """
        was_enabled = self.enabled
        self.enabled = False
        try:
            yield self
        finally:
            self.enabled = was_enabled

    # -- access ---------------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> Optional[float]:
        """Current value of gauge ``name`` (None if never set)."""
        return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[Histogram]:
        """Histogram ``name`` (None if nothing was observed)."""
        return self._histograms.get(name)

    def __len__(self) -> int:
        """Total number of distinct metrics of any type."""
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- aggregation ----------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (deterministic given a
        deterministic merge order: counters/histograms add, gauges take
        the incoming value)."""
        for name, value in other._counters.items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, value in other._gauges.items():
            self._gauges[name] = value
        for name, hist in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = self._histograms[name] = Histogram()
            mine.merge(hist)

    def merge_dict(self, data: dict) -> None:
        """Fold an :meth:`as_dict` snapshot (e.g. one returned by a
        worker process) into this registry."""
        incoming = MetricsRegistry.from_dict(data)
        self.merge(incoming)

    # -- serialization --------------------------------------------------------

    def as_dict(self) -> dict:
        """Deterministic snapshot: every section sorted by metric name."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].as_dict()
                for k in sorted(self._histograms)
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        """Rebuild a registry serialized by :meth:`as_dict`."""
        registry = cls()
        registry._counters = dict(data.get("counters", {}))
        registry._gauges = dict(data.get("gauges", {}))
        registry._histograms = {
            name: Histogram.from_dict(entry)
            for name, entry in data.get("histograms", {}).items()
        }
        return registry


#: Disabled default registry, mirroring the tracer's NULL_TRACER setup.
_NULL_METRICS = MetricsRegistry(enabled=False)

_current: MetricsRegistry = _NULL_METRICS


def get_metrics() -> MetricsRegistry:
    """The process-wide metrics registry (disabled by default)."""
    return _current


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-wide registry and return it."""
    global _current
    _current = registry
    return registry


def reset_metrics() -> None:
    """Restore the disabled default registry."""
    set_metrics(_NULL_METRICS)
