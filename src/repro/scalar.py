"""Scalar-type parameterization.

EntoBench kernels are C++ templates over the scalar type (``float``,
``double``, or a Q-format fixed point).  Here a :class:`ScalarType` plays
the template parameter's role: kernels compute with the matching NumPy
dtype (or the fixed-point simulator) and the pipeline model prices float
operations according to the precision and the target core's FPU.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class ScalarType:
    """A kernel scalar type: ``f32``, ``f64``, or ``qM.N`` fixed point.

    For fixed point, ``q_int`` is the number of integer bits (excluding the
    sign bit) and ``q_frac`` the number of fractional bits; the underlying
    container is a 32-bit word, so ``q_int + q_frac`` must be 31.
    """

    kind: str  # "f32" | "f64" | "fixed"
    q_int: Optional[int] = None
    q_frac: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("f32", "f64", "fixed"):
            raise ValueError(f"unknown scalar kind {self.kind!r}")
        if self.kind == "fixed":
            if self.q_int is None or self.q_frac is None:
                raise ValueError("fixed-point scalar requires q_int and q_frac")
            if self.q_int + self.q_frac != 31:
                raise ValueError(
                    f"q{self.q_int}.{self.q_frac}: integer + fractional bits must "
                    "total 31 for a signed 32-bit container"
                )

    @property
    def is_fixed(self) -> bool:
        return self.kind == "fixed"

    @property
    def is_float(self) -> bool:
        return self.kind in ("f32", "f64")

    @property
    def dtype(self) -> np.dtype:
        """NumPy dtype used for the real computation.

        Fixed-point kernels compute through :mod:`repro.fixedpoint`, which
        stores raw words in int64; the float64 dtype here is only the type
        used when converting back for validation.
        """
        if self.kind == "f32":
            return np.dtype(np.float32)
        return np.dtype(np.float64)

    @property
    def name(self) -> str:
        if self.kind == "fixed":
            return f"q{self.q_int}.{self.q_frac}"
        return self.kind

    def __str__(self) -> str:
        return self.name


F32 = ScalarType("f32")
F64 = ScalarType("f64")

_Q_RE = re.compile(r"^q(\d+)\.(\d+)$")


def q(int_bits: int, frac_bits: int) -> ScalarType:
    """Construct a Q-format fixed-point scalar type, e.g. ``q(7, 24)``."""
    return ScalarType("fixed", q_int=int_bits, q_frac=frac_bits)


def parse_scalar(spec) -> ScalarType:
    """Parse ``'f32'``, ``'f64'``, ``'q7.24'``, or pass through a ScalarType."""
    if isinstance(spec, ScalarType):
        return spec
    s = str(spec).lower()
    if s == "f32" or s == "float":
        return F32
    if s == "f64" or s == "double":
        return F64
    m = _Q_RE.match(s)
    if m:
        return q(int(m.group(1)), int(m.group(2)))
    raise ValueError(f"cannot parse scalar type {spec!r}")
