"""Infinite-horizon discrete LQR (the ``fly-lqr`` kernel).

The gain is computed offline (a Riccati iteration at construction, exactly
like the precomputed gains flashed onto the robot); the on-device kernel is
the per-step dense gain application ``u = -K (x - x_ref)``.  The 4x4 gain
of the fly model is sparse, but — as the paper observes — the generic
dense implementation cannot exploit that, so the dense mat-vec cost is what
gets recorded.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.control.dynamics import LinearModel
from repro.mcu.ops import OpCounter


def solve_dare(a: np.ndarray, b: np.ndarray, q: np.ndarray, r: np.ndarray,
               iterations: int = 4000, tol: float = 1e-10) -> np.ndarray:
    """Discrete algebraic Riccati equation by fixed-point iteration."""
    p = q.copy()
    for _ in range(iterations):
        btp = b.T @ p
        k = np.linalg.solve(r + btp @ b, btp @ a)
        p_next = q + a.T @ p @ (a - b @ k)
        if np.max(np.abs(p_next - p)) < tol:
            return p_next
        p = p_next
    return p


def lqr_gain(model: LinearModel) -> np.ndarray:
    """Infinite-horizon LQR gain K such that u = -K x stabilizes."""
    p = solve_dare(model.a, model.b, model.q, model.r)
    btp = model.b.T @ p
    return np.linalg.solve(model.r + btp @ model.b, btp @ model.a)


class LqrController:
    """Per-step dense gain application, operation-counted."""

    def __init__(self, model: LinearModel):
        self.model = model
        self.k = lqr_gain(model)

    def compute(self, counter: OpCounter, x: np.ndarray,
                x_ref: Optional[np.ndarray] = None) -> np.ndarray:
        """u = -K (x - x_ref), saturated at the model's input limits."""
        nx, nu = self.model.nx, self.model.nu
        err = x - (x_ref if x_ref is not None else 0.0)
        counter.vec_add(nx)
        u = -(self.k @ err)
        counter.mat_vec(nu, nx)
        counter.vec_scale(nu)
        u = self.model.clip_input(u)
        counter.fcmp(2 * nu)
        return u
