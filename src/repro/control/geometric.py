"""SE(3) geometric tracking controller (the ``bee-geom`` kernel) [42, 46].

Lee-Leok-McClamroch geometric control on the rotation manifold: from the
position/velocity errors build the desired thrust direction, construct the
desired rotation frame, compute the rotation error by the vee-map of the
skew-symmetric part of ``R_d' R``, and assemble the moment command with
the gyroscopic feedforward ``omega x J omega``.  Float-heavy (matrix
products, normalizations, cross products) with almost no branching —
visible in its Table III instruction mix (F-dominated).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mcu.ops import OpCounter

GRAVITY = 9.81


def _vee(m: np.ndarray) -> np.ndarray:
    return np.array([m[2, 1], m[0, 2], m[1, 0]])


def _hat(v: np.ndarray) -> np.ndarray:
    return np.array(
        [[0.0, -v[2], v[1]], [v[2], 0.0, -v[0]], [-v[1], v[0], 0.0]]
    )


@dataclass
class GeometricCommand:
    thrust: float
    moment: np.ndarray
    r_desired: np.ndarray
    #: Harmonic wing-drive parameters (per-wing amplitude/bias/split-cycle
    #: phase samples), from the harmonic-sinusoid composition of [46].
    wing_waveform: np.ndarray = None


class GeometricController:
    """SE(3) controller with RoboBee-scale gains and inertia."""

    def __init__(
        self,
        mass: float = 8.0e-5,  # 80 mg
        inertia_diag: tuple = (1.4e-9, 1.4e-9, 0.5e-9),
        kx: float = 0.018,
        kv: float = 1.7e-3,
        kr: float = 1.3e-4,
        kw: float = 5.9e-7,
    ):
        self.mass = mass
        self.j = np.diag(inertia_diag)
        self.kx, self.kv, self.kr, self.kw = kx, kv, kr, kw

    def compute(
        self,
        counter: OpCounter,
        pos: np.ndarray,
        vel: np.ndarray,
        r: np.ndarray,
        omega: np.ndarray,
        pos_ref: np.ndarray,
        vel_ref: np.ndarray,
        acc_ref: np.ndarray,
        yaw_ref: float = 0.0,
    ) -> GeometricCommand:
        """One control step: thrust magnitude + body moment."""
        ex = pos - pos_ref
        ev = vel - vel_ref
        counter.vec_add(6)

        # Desired force vector (world frame).
        f_des = (
            -self.kx * ex
            - self.kv * ev
            + self.mass * (acc_ref + np.array([0.0, 0.0, GRAVITY]))
        )
        counter.flop_mix(add=9, mul=9)

        # Thrust is the projection of f_des on the current body z-axis.
        b3 = r[:, 2]
        thrust = float(f_des @ b3)
        counter.vec_dot(3)

        # Desired attitude: b3_d along f_des, yaw from the reference.
        norm_f = float(np.linalg.norm(f_des))
        counter.vec_norm(3)
        if norm_f < 1e-12:
            b3_d = np.array([0.0, 0.0, 1.0])
        else:
            b3_d = f_des / norm_f
            counter.vec_scale(3)
        b1_ref = np.array([np.cos(yaw_ref), np.sin(yaw_ref), 0.0])
        counter.ffunc(2)
        b2_d = np.cross(b3_d, b1_ref)
        counter.vec_cross()
        norm_b2 = float(np.linalg.norm(b2_d))
        counter.vec_norm(3)
        if norm_b2 < 1e-9:
            b2_d = np.array([0.0, 1.0, 0.0])
        else:
            b2_d = b2_d / norm_b2
            counter.vec_scale(3)
        b1_d = np.cross(b2_d, b3_d)
        counter.vec_cross()
        r_d = np.column_stack([b1_d, b2_d, b3_d])

        # Rotation and angular-velocity errors.
        er_mat = r_d.T @ r - r.T @ r_d
        counter.mat_mat(3, 3, 3)
        counter.mat_mat(3, 3, 3)
        counter.mat_add(3, 3)
        er = 0.5 * _vee(er_mat)
        counter.vec_scale(3)
        ew = omega  # tracking a hover: omega_d = 0
        # Moment with gyroscopic feedforward.
        j_omega = self.j @ omega
        counter.mat_vec(3, 3)
        gyro = np.cross(omega, j_omega)
        counter.vec_cross()
        moment = -self.kr * er - self.kw * ew + gyro
        counter.flop_mix(add=6, mul=6)
        waveform = self._harmonic_waveform(counter, thrust, moment)
        return GeometricCommand(thrust=thrust, moment=moment, r_desired=r_d,
                                wing_waveform=waveform)

    #: Wing-drive synthesis resolution: phase samples per stroke period.
    N_PHASE_SAMPLES = 16

    def _harmonic_waveform(self, counter: OpCounter, thrust: float,
                           moment: np.ndarray) -> np.ndarray:
        """Compose the per-wing harmonic drive signal [46].

        Thrust maps to stroke amplitude, roll moment to a left/right
        amplitude split, pitch to a stroke-plane bias, and yaw to a
        split-cycle phase skew; the result is sampled over one stroke
        period for the (off-kernel) pulse generator.  The trigonometric
        synthesis here is a real share of the deployed controller's cost.
        """
        amp = np.sqrt(max(thrust, 0.0) / (self.mass * GRAVITY) + 1e-9)
        counter.flop_mix(add=1, mul=2, div=1, sqrt=1)
        roll_split = np.clip(moment[0] / (self.kr + 1e-12), -0.3, 0.3)
        pitch_bias = np.clip(moment[1] / (self.kr + 1e-12), -0.3, 0.3)
        yaw_skew = np.clip(moment[2] / (self.kr + 1e-12), -0.2, 0.2)
        counter.flop_mix(div=3)
        counter.fcmp(6)

        phases = np.linspace(0.0, 2.0 * np.pi, self.N_PHASE_SAMPLES,
                             endpoint=False)
        waveform = np.zeros((2, self.N_PHASE_SAMPLES))
        for wing, sign in ((0, 1.0), (1, -1.0)):
            wing_amp = amp * (1.0 + sign * roll_split)
            # Fundamental + split-cycle second harmonic + plane bias.
            waveform[wing] = (
                wing_amp * np.sin(phases + sign * yaw_skew)
                + 0.15 * wing_amp * np.sin(2.0 * phases)
                + pitch_bias
            )
            n = self.N_PHASE_SAMPLES
            counter.ffunc(2 * n)
            counter.flop_mix(add=3 * n, mul=4 * n)
            counter.store(n)
            counter.loop_overhead(n)
        return waveform
