"""Control kernels: LQR, TinyMPC, OSQP-MPC, SE(3) geometric, SMAC."""

from repro.control.dynamics import LinearModel, bee_hover, fly_longitudinal, simulate_closed_loop
from repro.control.geometric import GeometricCommand, GeometricController
from repro.control.lqr import LqrController, lqr_gain, solve_dare
from repro.control.osqp_mpc import OsqpMpc, OsqpResult, condense_mpc
from repro.control.smac import SlidingModeAdaptiveController, SmacCommand
from repro.control.tinympc import TinyMpc, TinyMpcResult

__all__ = [
    "LinearModel",
    "bee_hover",
    "fly_longitudinal",
    "simulate_closed_loop",
    "GeometricCommand",
    "GeometricController",
    "LqrController",
    "lqr_gain",
    "solve_dare",
    "OsqpMpc",
    "OsqpResult",
    "condense_mpc",
    "SlidingModeAdaptiveController",
    "SmacCommand",
    "TinyMpc",
    "TinyMpcResult",
]
