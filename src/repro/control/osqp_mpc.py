"""OSQP-style ADMM MPC (the ``bee-mpc`` kernel) [17].

A general-purpose operator-splitting QP solver applied to a condensed MPC
problem: unlike TinyMPC it factors a full KKT system and iterates ADMM
over the stacked decision vector — the only control kernel in the suite
with general iterative optimization, and by far the most expensive
(Table IV's bee-mpc row).

QP form::

    min 0.5 w' P w + q' w    s.t.  l <= A w <= u

with ``w`` the stacked inputs over the horizon and box input constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.control.dynamics import LinearModel
from repro.mcu import linalg
from repro.mcu.ops import OpCounter


def condense_mpc(
    model: LinearModel, horizon: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Condense the MPC into (P, S, c-map): w = stacked inputs.

    ``x_k = A^k x0 + sum_j S_{kj} u_j``; the quadratic cost over the
    horizon condenses to ``P = 2 (S' Qbar S + Rbar)`` and the linear term
    depends on x0 and the reference (computed per solve).
    """
    nx, nu = model.nx, model.nu
    n = horizon
    # Prediction matrix S: (n*nx, n*nu), and free-response powers of A.
    s = np.zeros((n * nx, n * nu))
    a_pow = [np.eye(nx)]
    for k in range(1, n + 1):
        a_pow.append(a_pow[-1] @ model.a)
    for k in range(1, n + 1):
        for j in range(k):
            s[(k - 1) * nx : k * nx, j * nu : (j + 1) * nu] = (
                a_pow[k - 1 - j] @ model.b
            )
    # Terminal cost = the DARE solution, so the receding-horizon MPC
    # inherits infinite-horizon behaviour despite the short horizon.
    from repro.control.lqr import solve_dare

    p_term = solve_dare(model.a, model.b, model.q, model.r)
    q_blocks = [model.q] * (n - 1) + [p_term]
    q_bar = np.zeros((n * nx, n * nx))
    for k, blk in enumerate(q_blocks):
        q_bar[k * nx : (k + 1) * nx, k * nx : (k + 1) * nx] = blk
    r_bar = np.kron(np.eye(n), model.r)
    p = 2.0 * (s.T @ q_bar @ s + r_bar)
    return p, s, np.vstack(a_pow[1:]), q_bar


@dataclass
class OsqpResult:
    u0: np.ndarray
    iterations: int
    primal_residual: float
    dual_residual: float
    converged: bool


class OsqpMpc:
    """Condensed MPC solved by an OSQP-style ADMM loop."""

    def __init__(self, model: LinearModel, horizon: int = 8,
                 rho: Optional[float] = None, sigma: float = 1e-6):
        self.model = model
        self.n = horizon
        self.sigma = sigma
        self.p_mat, self.s_mat, self.a_powers, self.q_bar = condense_mpc(model, horizon)
        nu = model.nu
        self.n_var = horizon * nu
        # OSQP scales the penalty to the problem; without its full
        # adaptive-rho machinery, a fraction of the mean curvature works.
        self.rho = rho if rho is not None else 0.1 * float(
            np.mean(np.diag(self.p_mat))
        )
        # Constraint matrix: box bounds on every input (A = I).
        self.l_vec = np.tile(model.u_min, horizon)
        self.u_vec = np.tile(model.u_max, horizon)
        self._kkt_factor: Optional[np.ndarray] = None
        # Warm starts carried between receding-horizon solves.
        self._w = np.zeros(self.n_var)
        self._y = np.zeros(self.n_var)

    def _linear_term(self, counter: OpCounter, x0: np.ndarray,
                     x_ref: np.ndarray) -> np.ndarray:
        """q = 2 S' Qbar (free_response - ref)."""
        n, nx = self.n, self.model.nx
        free = self.a_powers @ x0
        counter.mat_vec(n * nx, nx)
        err = free - x_ref[:n].reshape(-1)
        counter.vec_add(n * nx)
        q_bar_err = self.q_bar @ err
        counter.mat_vec(n * nx, nx)  # block-diagonal product
        q = 2.0 * (self.s_mat.T @ q_bar_err)
        counter.mat_vec(self.n_var, n * nx)
        counter.vec_scale(self.n_var)
        return q

    def _factor_kkt(self, counter: OpCounter) -> np.ndarray:
        """Cholesky factor of P + sigma I + rho A'A (A = I here).

        OSQP refactors whenever rho adapts; this solver factors once per
        solve, which is what the embedded port does.
        """
        m = self.p_mat + (self.sigma + self.rho) * np.eye(self.n_var)
        counter.mat_add(self.n_var, self.n_var)
        return linalg.cholesky(counter, m)

    def solve(
        self,
        counter: OpCounter,
        x0: np.ndarray,
        x_ref: np.ndarray,
        max_iters: int = 50,
        tol: float = 1e-4,
        check_every: int = 10,
    ) -> OsqpResult:
        nv = self.n_var
        q = self._linear_term(counter, x0, x_ref)
        chol = self._factor_kkt(counter)

        w = self._w.copy()
        y = self._y.copy()
        z = np.clip(w, self.l_vec, self.u_vec)
        iterations = 0
        primal = dual = np.inf
        for it in range(max_iters):
            iterations = it + 1
            counter.loop_overhead(1)
            rhs = self.sigma * w - q + self.rho * z - y
            counter.vec_add(3 * nv)
            counter.vec_scale(2 * nv)
            w = linalg.cholesky_solve(counter, chol, rhs)
            z_prev = z
            z = np.clip(w + y / self.rho, self.l_vec, self.u_vec)
            counter.vec_add(nv)
            counter.vec_scale(nv)
            counter.fcmp(2 * nv)
            y = y + self.rho * (w - z)
            counter.vec_axpy(nv)
            counter.vec_add(nv)
            # OSQP only evaluates termination every check_every iterations
            # (residual computation is itself costly on an MCU).
            if iterations % check_every == 0:
                primal = float(np.abs(w - z).max())
                dual = float(self.rho * np.abs(z - z_prev).max())
                counter.vec_add(2 * nv)
                counter.fcmp(2 * nv)
                if primal < tol and dual < tol:
                    counter.branch()
                    break
        # Shift the solution one step for the next receding-horizon solve.
        nu = self.model.nu
        self._w = np.concatenate([w[nu:], w[-nu:]])
        self._y = np.concatenate([y[nu:], y[-nu:]])
        u0 = z[:nu].copy()
        return OsqpResult(u0, iterations, primal, dual,
                          primal < tol and dual < tol)

    def flops_per_solve(self, assumed_iters: int = 10) -> int:
        """Idealized FLOP estimate: factorization + a few triangular
        solves, no projections or residual bookkeeping counted."""
        nv = self.n_var
        return nv**3 // 3 + assumed_iters * 2 * nv * nv
