"""Sliding-mode adaptive controller (the ``bee-smac`` kernel) [11, 12].

Chirarattananon-style adaptive flight control for a flapping-wing vehicle:
per-axis sliding surfaces with boundary-layer saturation, a harmonic
regressor capturing the periodic wing-stroke disturbance (the dominant cost
— dozens of transcendental evaluations per step), online parameter
adaptation, and discrete low-pass filtering of the derivative estimates.
This mix of float math *and* heavy control flow is why bee-smac sits far
above bee-geom in the dynamic tables despite similar state dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mcu.ops import OpCounter


@dataclass
class SmacCommand:
    u: np.ndarray  # per-axis actuation (altitude + roll + pitch)
    sliding: np.ndarray
    theta_norm: float


class SlidingModeAdaptiveController:
    """3-axis sliding-mode controller with harmonic adaptive feedforward."""

    AXES = 3

    def __init__(
        self,
        n_harmonics: int = 12,
        stroke_freq_hz: float = 120.0,
        lam: float = 18.0,
        eta: float = 2.0,
        boundary: float = 0.15,
        gamma: float = 0.4,
        forgetting: float = 0.995,
        filter_alpha: float = 0.3,
    ):
        self.n_h = n_harmonics
        self.stroke_freq = stroke_freq_hz
        self.lam = lam
        self.eta = eta
        self.boundary = boundary
        self.gamma0 = gamma
        self.forgetting = forgetting
        self.alpha = filter_alpha
        self.reset()

    def reset(self) -> None:
        n_params = 1 + 2 * self.n_h
        #: Adaptive parameters: per axis, [bias, n_h sin terms, n_h cos terms].
        self.theta = np.zeros((self.AXES, n_params))
        #: Composite (RLS-style) adaptation gain matrices, one per axis —
        #: the recursive-least-squares adaptation of [12], the dominant
        #: per-step matrix cost of this controller.
        self.gamma = np.stack([np.eye(n_params) * self.gamma0
                               for _ in range(self.AXES)])
        self._err_filt = np.zeros(self.AXES)
        self._derr_filt = np.zeros(self.AXES)
        self._prev_err = np.zeros(self.AXES)

    def _regressor(self, counter: OpCounter, t: float) -> np.ndarray:
        """Harmonic basis [1, sin(k w t), cos(k w t)]_{k=1..n_h}."""
        w = 2.0 * np.pi * self.stroke_freq
        phases = w * t * np.arange(1, self.n_h + 1)
        counter.flop_mix(mul=self.n_h + 2)
        phi = np.concatenate([[1.0], np.sin(phases), np.cos(phases)])
        counter.ffunc(2 * self.n_h)
        counter.store(2 * self.n_h + 1)
        return phi

    def _saturate(self, counter: OpCounter, s: np.ndarray) -> np.ndarray:
        """Boundary-layer saturation sat(s / phi)."""
        counter.flop_mix(div=self.AXES)
        counter.fcmp(2 * self.AXES)
        counter.branch(self.AXES)
        return np.clip(s / self.boundary, -1.0, 1.0)

    def compute(
        self,
        counter: OpCounter,
        t: float,
        dt: float,
        err: np.ndarray,
        derr: np.ndarray,
    ) -> SmacCommand:
        """One control step from per-axis tracking errors.

        ``err``/``derr`` are [altitude, roll, pitch] errors and rates.
        """
        n_params = 1 + 2 * self.n_h
        # Discrete low-pass filtering of the error signals.
        self._err_filt = (1 - self.alpha) * self._err_filt + self.alpha * err
        self._derr_filt = (1 - self.alpha) * self._derr_filt + self.alpha * derr
        counter.flop_mix(add=2 * self.AXES, mul=4 * self.AXES)

        # Sliding surfaces s = de + lambda e.
        s = self._derr_filt + self.lam * self._err_filt
        counter.flop_mix(add=self.AXES, mul=self.AXES)

        phi = self._regressor(counter, t)
        sat = self._saturate(counter, s)

        u = np.zeros(self.AXES)
        for axis in range(self.AXES):
            counter.loop_overhead(1)
            # Adaptive feedforward: theta_axis . phi.
            ff = float(self.theta[axis] @ phi)
            counter.vec_dot(n_params)
            # Robust term + PD-like sliding term.
            u[axis] = -self.eta * sat[axis] - self.lam * s[axis] - ff
            counter.flop_mix(add=2, mul=2)
            # Composite RLS adaptation (with boundary-layer freeze):
            # Gamma <- (Gamma - Gamma phi phi' Gamma / (f + phi' Gamma phi)) / f
            # theta <- theta - dt * Gamma phi s
            if abs(s[axis]) > self.boundary:
                counter.branch()
                g = self.gamma[axis]
                g_phi = g @ phi
                counter.mat_vec(n_params, n_params)
                denom = self.forgetting + float(phi @ g_phi)
                counter.vec_dot(n_params)
                counter.fadd()
                g = (g - np.outer(g_phi, g_phi) / denom) / self.forgetting
                counter.flop_mix(
                    add=n_params * n_params,
                    mul=n_params * n_params,
                    div=n_params * n_params,
                )
                counter.load(2 * n_params * n_params)
                counter.store(n_params * n_params)
                self.gamma[axis] = g
                self.theta[axis] = self.theta[axis] - dt * s[axis] * (g @ phi)
                counter.mat_vec(n_params, n_params)
                counter.vec_axpy(n_params)
                counter.flop_mix(mul=2)
            else:
                counter.branch(taken=False)
            # Parameter projection keeps theta bounded (per-element clamp).
            self.theta[axis] = np.clip(self.theta[axis], -5.0, 5.0)
            counter.fcmp(2 * n_params)
            counter.load(n_params)
            counter.store(n_params)

        self._prev_err = err.copy()
        counter.store(self.AXES)
        norm = float(np.linalg.norm(self.theta))
        counter.vec_norm(self.AXES * n_params)
        return SmacCommand(u=u, sliding=s, theta_norm=norm)
