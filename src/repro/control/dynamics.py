"""Linearized flapping-wing vehicle models for the control kernels.

* ``fly_longitudinal`` — the 4-state planar model of [19] used by
  ``fly-lqr`` and ``fly-tiny-mpc``: horizontal position, velocity, pitch,
  pitch rate, driven by a single torque input.  The dynamics and gain
  matrices are sparse — which a generic dense implementation cannot
  exploit (the paper's Case Study 3 observation).
* ``bee_hover`` — a 6-state, 3-input hover model (position + velocity,
  force inputs) for the OSQP-style ``bee-mpc``.

All matrices are discrete-time (zero-order hold at the control rate).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

GRAVITY = 9.81


@dataclass(frozen=True)
class LinearModel:
    """Discrete-time LTI model with quadratic stage cost."""

    name: str
    a: np.ndarray
    b: np.ndarray
    q: np.ndarray
    r: np.ndarray
    dt: float
    #: Element-wise input bounds (lo, hi), broadcastable to the input dim.
    u_min: np.ndarray
    u_max: np.ndarray

    @property
    def nx(self) -> int:
        return self.a.shape[0]

    @property
    def nu(self) -> int:
        return self.b.shape[1]

    def step(self, x: np.ndarray, u: np.ndarray) -> np.ndarray:
        return self.a @ x + self.b @ u

    def clip_input(self, u: np.ndarray) -> np.ndarray:
        return np.clip(u, self.u_min, self.u_max)


def fly_longitudinal(dt: float = 0.002, inertia: float = 1.5e-9,
                     torque_limit: float = 2e-7) -> LinearModel:
    """4-state planar flapping-wing model: x = [x, vx, theta, theta_dot].

    Pitch tilts the thrust vector, accelerating the body horizontally; the
    single input is a pitch torque (scaled to units of rad/s^2 here so the
    conditioning matches an embedded fixed-scale implementation).
    """
    a = np.array(
        [
            [1.0, dt, 0.0, 0.0],
            [0.0, 1.0, -GRAVITY * dt, 0.0],
            [0.0, 0.0, 1.0, dt],
            [0.0, 0.0, 0.0, 1.0],
        ]
    )
    b = np.array([[0.0], [0.0], [0.0], [dt]])
    q = np.diag([40.0, 4.0, 2.0, 0.1])
    r = np.array([[1e-4]])
    limit = torque_limit / inertia  # rad/s^2
    return LinearModel(
        "fly-longitudinal", a, b, q, r, dt,
        u_min=np.array([-limit]), u_max=np.array([limit]),
    )


def bee_hover(dt: float = 0.02, accel_limit: float = 6.0) -> LinearModel:
    """6-state hover model: x = [p(3), v(3)], u = mass-normalized forces.

    Position-level MPC runs at a slower rate (50 Hz) than the inner
    attitude loop, so the horizon covers a meaningful motion window.
    """
    a = np.eye(6)
    a[0:3, 3:6] = np.eye(3) * dt
    b = np.vstack([np.eye(3) * (0.5 * dt * dt), np.eye(3) * dt])
    q = np.diag([60.0, 60.0, 80.0, 6.0, 6.0, 8.0])
    r = np.eye(3) * 1e-3
    return LinearModel(
        "bee-hover", a, b, q, r, dt,
        u_min=np.full(3, -accel_limit), u_max=np.full(3, accel_limit),
    )


def simulate_closed_loop(
    model: LinearModel,
    controller,
    x0: np.ndarray,
    n_steps: int,
    disturbance: float = 0.0,
    seed: int = 0,
) -> np.ndarray:
    """Roll the model forward under a ``controller(x, k) -> u`` policy.

    Returns the (n_steps+1, nx) state history.  Inputs are saturated at the
    model limits, as the real drive electronics would.
    """
    rng = np.random.default_rng(seed)
    xs = np.zeros((n_steps + 1, model.nx))
    xs[0] = x0
    for k in range(n_steps):
        u = model.clip_input(np.atleast_1d(controller(xs[k], k)))
        x_next = model.step(xs[k], u)
        if disturbance > 0:
            x_next = x_next + rng.normal(0.0, disturbance, size=model.nx)
        xs[k + 1] = x_next
    return xs
