"""Benchmark problems for the control kernels.

Registers the Table III Opt./Geom./Adapt. Ctrl. rows: ``fly-lqr``,
``fly-tiny-mpc``, ``bee-mpc``, ``bee-geom``, and ``bee-smac``.  Each
problem runs its controller in closed loop against a (non-counted)
environment simulation and validates task-level behaviour: convergence,
bounded tracking error, and respected input constraints.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.control.dynamics import bee_hover, fly_longitudinal
from repro.control.geometric import GeometricController, _hat
from repro.control.lqr import LqrController
from repro.control.osqp_mpc import OsqpMpc
from repro.control.smac import SlidingModeAdaptiveController
from repro.core.problem import EntoProblem
from repro.core.registry import register
from repro.control.tinympc import TinyMpc
from repro.datasets import trajectories
from repro.mcu.memory import Footprint
from repro.mcu.ops import OpCounter
from repro.mcu.static import StaticMix, compose
from repro.scalar import F32, ScalarType


class FlyLqrProblem(EntoProblem):
    """Sparse 4x4 LQR regulating the fly model to hover."""

    name = "fly-lqr"
    stage = "C"
    category = "Opt. Ctrl."
    dataset_name = "fly-traj"

    def __init__(self, scalar: ScalarType = F32, seed: int = 0, n_steps: int = 600):
        super().__init__(scalar, seed)
        self.n_steps = n_steps
        self.history: Optional[np.ndarray] = None

    def setup(self, rng: np.random.Generator) -> None:
        self.model = fly_longitudinal()
        self.controller = LqrController(self.model)
        self.x0 = trajectories.perturbed_initial_state(
            self.model.nx, scale=0.03, seed=self.seed
        )
        self.work_units = self.n_steps

    def solve(self, counter: OpCounter):
        x = self.x0.copy()
        history = np.zeros((self.n_steps + 1, self.model.nx))
        history[0] = x
        for k in range(self.n_steps):
            u = self.controller.compute(counter, x)
            x = self.model.step(x, self.model.clip_input(u))
            history[k + 1] = x
        self.history = history
        return history[-1]

    def validate(self, result) -> bool:
        # Unconstrained LQR guarantees a monotonically decreasing Riccati
        # cost-to-go; check that plus strict overall decrease (both hold
        # regardless of the episode length).
        from repro.control.lqr import solve_dare

        p = solve_dare(self.model.a, self.model.b, self.model.q, self.model.r)
        values = np.einsum("ki,ij,kj->k", self.history, p, self.history)
        monotone = bool(np.all(np.diff(values) <= values[:-1] * 1e-9 + 1e-15))
        return monotone and values[-1] < 0.9 * values[0]

    def static_mix_base(self) -> StaticMix:
        return compose(("lqr_gain_apply", "small_matmul", "harness_runtime"))

    def footprint(self) -> Footprint:
        return Footprint(flash_bytes=self.static_mix_base().flash_bytes, data_bytes=512)

    def flop_estimate(self) -> int:
        # The supplement-style count: the sparse gain has ~6 non-zeros.
        return 30 * self.work_units


class FlyTinyMpcProblem(EntoProblem):
    """TinyMPC with a 10-step horizon on the fly model."""

    name = "fly-tiny-mpc"
    stage = "C"
    category = "Opt. Ctrl."
    dataset_name = "fly-traj"

    def __init__(self, scalar: ScalarType = F32, seed: int = 0,
                 n_steps: int = 100, horizon: int = 10):
        super().__init__(scalar, seed)
        self.n_steps = n_steps
        self.horizon = horizon
        self.history: Optional[np.ndarray] = None
        self.inputs: Optional[np.ndarray] = None

    def setup(self, rng: np.random.Generator) -> None:
        self.model = fly_longitudinal()
        self.x0 = trajectories.perturbed_initial_state(
            self.model.nx, scale=0.03, seed=self.seed
        )
        self.reference = trajectories.hover(
            self.model.nx, self.model.nu, n=self.n_steps + self.horizon + 1
        )
        self.work_units = self.n_steps

    def solve(self, counter: OpCounter):
        mpc = TinyMpc(self.model, horizon=self.horizon)
        # The start-up Riccati pass runs outside the measured ROI, like the
        # paper (which notes it "could be moved completely offline"); its
        # cost is kept separately for the start-up ablation.
        startup_counter = OpCounter()
        mpc.setup_cache(startup_counter)
        self.startup_trace = startup_counter.snapshot()
        x = self.x0.copy()
        history = np.zeros((self.n_steps + 1, self.model.nx))
        inputs = np.zeros((self.n_steps, self.model.nu))
        history[0] = x
        for k in range(self.n_steps):
            ref = self.reference.window(k, self.horizon + 1)
            result = mpc.solve(counter, x, ref, max_iters=8, fixed_iterations=True)
            inputs[k] = result.u0
            x = self.model.step(x, result.u0)
            history[k + 1] = x
        self.history = history
        self.inputs = inputs
        return history[-1]

    def validate(self, result) -> bool:
        from repro.control.lqr import solve_dare
        p = solve_dare(self.model.a, self.model.b, self.model.q, self.model.r)
        v0 = float(self.history[0] @ p @ self.history[0])
        vf = float(self.history[-1] @ p @ self.history[-1])
        within_limits = bool(
            np.all(self.inputs >= self.model.u_min - 1e-9)
            and np.all(self.inputs <= self.model.u_max + 1e-9)
        )
        return vf < 0.5 * v0 and within_limits

    def static_mix_base(self) -> StaticMix:
        return compose(("tinympc_backward_pass", "tinympc_forward_pass",
                        "dense_matmul", "lu_solver", "reference_trajectory",
                        "harness_runtime"))

    def footprint(self) -> Footprint:
        # Horizon-length state/input/slack/dual buffers + cached matrices.
        nx, nu = 4, 1
        per_step = (nx + 3 * nu) * 4
        data = (self.horizon + 1) * per_step + (nx * nx + nx * nu) * 4 * 4 + 2048
        return Footprint(flash_bytes=self.static_mix_base().flash_bytes,
                         data_bytes=data)

    def flop_estimate(self) -> int:
        return TinyMpc.flops_per_solve(horizon=self.horizon) * self.work_units


class BeeMpcProblem(EntoProblem):
    """OSQP-style ADMM MPC hovering the bee model."""

    name = "bee-mpc"
    stage = "C"
    category = "Opt. Ctrl."
    dataset_name = "bee-synth"

    def __init__(self, scalar: ScalarType = F32, seed: int = 0,
                 n_steps: int = 12, horizon: int = 8):
        super().__init__(scalar, seed)
        self.n_steps = n_steps
        self.horizon = horizon
        self.history: Optional[np.ndarray] = None
        self.inputs: Optional[np.ndarray] = None

    def setup(self, rng: np.random.Generator) -> None:
        self.model = bee_hover()
        self.x0 = trajectories.perturbed_initial_state(
            self.model.nx, scale=0.05, seed=self.seed
        )
        # Aggressive figure-eight: accelerations approach the input limits,
        # so the box constraints are genuinely active (the regime where the
        # ADMM loop earns its cost).
        traj = trajectories.figure_eight(
            self.model.nx, self.model.nu,
            n=self.n_steps + self.horizon + 1,
            dt=self.model.dt, amplitude=0.18, period_s=1.2,
            velocity_offset=3,
        )
        self.reference = traj.states
        self.work_units = self.n_steps

    def solve(self, counter: OpCounter):
        mpc = OsqpMpc(self.model, horizon=self.horizon)
        x = self.x0.copy()
        history = np.zeros((self.n_steps + 1, self.model.nx))
        inputs = np.zeros((self.n_steps, self.model.nu))
        history[0] = x
        for k in range(self.n_steps):
            result = mpc.solve(counter, x, self.reference[k + 1 : k + 1 + self.horizon])
            inputs[k] = result.u0
            x = self.model.step(x, self.model.clip_input(result.u0))
            history[k + 1] = x
        self.history = history
        self.inputs = inputs
        return history[-1]

    def validate(self, result) -> bool:
        # Tracking: mean position error over the run stays a small
        # fraction of the figure-eight amplitude.
        ref = self.reference[1 : self.n_steps + 1, :3]
        err = np.linalg.norm(self.history[1:, :3] - ref, axis=1)
        within_limits = bool(
            np.all(self.inputs >= self.model.u_min - 1e-6)
            and np.all(self.inputs <= self.model.u_max + 1e-6)
        )
        return float(err.mean()) < 0.08 and within_limits

    def static_mix_base(self) -> StaticMix:
        return compose(("osqp_core", "kkt_factorization", "admm_iteration",
                        "dense_matmul", "cholesky", "reference_trajectory",
                        "harness_runtime"))

    def footprint(self) -> Footprint:
        nv = self.horizon * 3
        data = (self.horizon * 6) * nv * 4 + nv * nv * 4 * 2 + 4096
        return Footprint(flash_bytes=self.static_mix_base().flash_bytes,
                         data_bytes=data)

    def flop_estimate(self) -> int:
        return OsqpMpc(self.model if hasattr(self, "model") else bee_hover(),
                       horizon=self.horizon).flops_per_solve() * max(self.work_units, 1)


class BeeGeomProblem(EntoProblem):
    """SE(3) geometric controller stabilizing a tilted hover."""

    name = "bee-geom"
    stage = "C"
    category = "Geom. Ctrl."
    dataset_name = "bee-synth"

    MASS = 8.0e-5
    J_DIAG = (1.4e-9, 1.4e-9, 0.5e-9)

    def __init__(self, scalar: ScalarType = F32, seed: int = 0,
                 n_steps: int = 200, dt: float = 2e-4):
        super().__init__(scalar, seed)
        self.n_steps = n_steps
        self.dt = dt
        self.tilt_history: Optional[np.ndarray] = None

    def setup(self, rng: np.random.Generator) -> None:
        self.controller = GeometricController(mass=self.MASS,
                                              inertia_diag=self.J_DIAG)
        # Initial tilt: a modest roll/pitch offset to recover from.
        angle = 0.25 + 0.1 * rng.random()
        axis = rng.normal(size=3)
        axis[2] = 0.0
        axis /= np.linalg.norm(axis)
        self.r0 = _rodrigues(axis, angle)
        self.work_units = self.n_steps

    def solve(self, counter: OpCounter):
        j = np.diag(self.J_DIAG)
        j_inv = np.linalg.inv(j)
        pos = np.zeros(3)
        vel = np.zeros(3)
        r = self.r0.copy()
        omega = np.zeros(3)
        zero3 = np.zeros(3)
        tilts = np.zeros(self.n_steps + 1)
        tilts[0] = _tilt_angle(r)
        for k in range(self.n_steps):
            cmd = self.controller.compute(
                counter, pos, vel, r, omega, zero3, zero3, zero3
            )
            # Environment simulation (not counted): rigid-body integration.
            thrust_acc = (cmd.thrust / self.MASS) * r[:, 2] - np.array(
                [0.0, 0.0, 9.81]
            )
            vel = vel + thrust_acc * self.dt
            pos = pos + vel * self.dt
            omega_dot = j_inv @ (cmd.moment - np.cross(omega, j @ omega))
            omega = omega + omega_dot * self.dt
            r = r @ _expm_so3(omega * self.dt)
            tilts[k + 1] = _tilt_angle(r)
        self.tilt_history = tilts
        return tilts[-1]

    def validate(self, result) -> bool:
        # The controller must recover the tilt to a small residual.
        return float(self.tilt_history[-1]) < 0.25 * float(self.tilt_history[0])

    def static_mix_base(self) -> StaticMix:
        return compose(("se3_controller", "rotation_log_map", "small_matmul",
                        "harness_runtime"))

    def footprint(self) -> Footprint:
        return Footprint(flash_bytes=self.static_mix_base().flash_bytes, data_bytes=768)


class BeeSmacProblem(EntoProblem):
    """Sliding-mode adaptive control under periodic wing-stroke disturbance."""

    name = "bee-smac"
    stage = "C"
    category = "Adapt. Ctrl."
    dataset_name = "bee-traj"

    def __init__(self, scalar: ScalarType = F32, seed: int = 0,
                 n_steps: int = 300, dt: float = 0.001):
        super().__init__(scalar, seed)
        self.n_steps = n_steps
        self.dt = dt
        self.error_history: Optional[np.ndarray] = None

    def setup(self, rng: np.random.Generator) -> None:
        self.controller = SlidingModeAdaptiveController()
        self.disturbance_amp = 1.5 + rng.random()
        self.work_units = self.n_steps

    def solve(self, counter: OpCounter):
        ctrl = self.controller
        ctrl.reset()
        freq = ctrl.stroke_freq
        pos = np.array([0.08, -0.05, 0.06])  # initial per-axis errors
        vel = np.zeros(3)
        errors = np.zeros((self.n_steps + 1, 3))
        errors[0] = pos
        for k in range(self.n_steps):
            t = k * self.dt
            cmd = ctrl.compute(counter, t, self.dt, pos.copy(), vel.copy())
            # Environment (not counted): decoupled double integrators with
            # a periodic stroke-coupled disturbance.
            disturbance = self.disturbance_amp * np.sin(
                2 * np.pi * freq * t + np.array([0.0, 1.1, 2.3])
            )
            acc = cmd.u + disturbance
            vel = vel + acc * self.dt
            pos = pos + vel * self.dt
            errors[k + 1] = pos
        self.error_history = errors
        return errors[-1]

    def validate(self, result) -> bool:
        start = float(np.abs(self.error_history[:20]).mean())
        tail = float(np.abs(self.error_history[-50:]).mean())
        return tail < 0.5 * start

    def static_mix_base(self) -> StaticMix:
        return compose(("sliding_mode_law", "adaptation_law",
                        "reference_trajectory", "harness_runtime"))

    def footprint(self) -> Footprint:
        n_params = 1 + 2 * self.controller.n_h if hasattr(self, "controller") else 25
        return Footprint(flash_bytes=self.static_mix_base().flash_bytes,
                         data_bytes=3 * n_params * 4 + 512)


def _rodrigues(axis: np.ndarray, angle: float) -> np.ndarray:
    k = _hat(axis)
    return np.eye(3) + np.sin(angle) * k + (1 - np.cos(angle)) * (k @ k)


def _expm_so3(w: np.ndarray) -> np.ndarray:
    angle = float(np.linalg.norm(w))
    if angle < 1e-12:
        return np.eye(3)
    return _rodrigues(w / angle, angle)


def _tilt_angle(r: np.ndarray) -> float:
    """Angle between the body z-axis and vertical."""
    return float(np.arccos(np.clip(r[2, 2], -1.0, 1.0)))


register("fly-lqr")(FlyLqrProblem)
register("fly-tiny-mpc")(FlyTinyMpcProblem)
register("bee-mpc")(BeeMpcProblem)
register("bee-geom")(BeeGeomProblem)
register("bee-smac")(BeeSmacProblem)
