"""TinyMPC (the ``fly-tiny-mpc`` kernel) [48].

ADMM-based MPC specialized for microcontrollers: the expensive Riccati
quantities (the infinite-horizon gain K, cost-to-go P, and the cached
back-substitution matrices C1, C2) are computed once at start-up, so every
ADMM iteration is only a backward pass over linear terms, a forward
rollout, a box projection, and a dual update.

The paper notes the start-up computation "involves dense and iterative
matrix-vector products" that "can exceed available stack space on the M4
if the horizon length is too long" — the start-up pass here is operation-
counted separately so that cost is visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.control.dynamics import LinearModel
from repro.mcu import linalg
from repro.mcu.ops import OpCounter


@dataclass
class TinyMpcResult:
    u0: np.ndarray
    iterations: int
    primal_residual: float
    dual_residual: float
    converged: bool


class TinyMpc:
    """Cache-based ADMM MPC over a box input constraint."""

    def __init__(self, model: LinearModel, horizon: int = 10,
                 rho: Optional[float] = None):
        self.model = model
        self.n = horizon
        # The penalty must sit at the scale of the input cost, or the
        # cached rho-augmented gain is far from the true LQR gain and
        # truncated ADMM under-actuates.
        self.rho = rho if rho is not None else 0.1 * float(np.mean(np.diag(model.r)))
        self._cache_ready = False
        # Warm starts carried between receding-horizon solves.
        self._z: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        # Filled by setup_cache():
        self.k_inf: Optional[np.ndarray] = None
        self.p_inf: Optional[np.ndarray] = None
        self.c1: Optional[np.ndarray] = None  # (R + rho I + B'PB)^-1
        self.c2: Optional[np.ndarray] = None  # (A - BK)'

    def setup_cache(self, counter: OpCounter, riccati_iters: int = 500) -> None:
        """The on-device start-up pass: iterate Riccati to (near) fixpoint.

        Dense and iterative — exactly the start-up cost the paper says
        could be moved offline.
        """
        m = self.model
        nx, nu = m.nx, m.nu
        r_tilde = m.r + self.rho * np.eye(nu)
        counter.mat_add(nu, nu)
        p = m.q.copy()
        k = np.zeros((nu, nx))
        for _ in range(riccati_iters):
            counter.loop_overhead(1)
            btp = linalg.matmul(counter, m.b.T, p)
            lhs = linalg.add(counter, r_tilde, linalg.matmul(counter, btp, m.b))
            k = linalg.lu_solve(counter, lhs, linalg.matmul(counter, btp, m.a))
            a_bk = linalg.add(counter, m.a, -linalg.matmul(counter, m.b, k))
            p_next = linalg.add(
                counter,
                m.q + linalg.matmul(counter, k.T, linalg.matmul(counter, m.r, k)),
                linalg.matmul(counter, a_bk.T, linalg.matmul(counter, p, a_bk)),
            )
            counter.mat_add(nx, nx)
            if np.max(np.abs(p_next - p)) < 1e-10:
                p = p_next
                counter.branch()
                break
            p = p_next
        self.k_inf, self.p_inf = k, p
        btp = linalg.matmul(counter, self.model.b.T, p)
        self.c1 = linalg.inverse(
            counter, r_tilde + linalg.matmul(counter, btp, self.model.b)
        )
        self.c2 = linalg.transpose(
            counter, self.model.a - self.model.b @ self.k_inf
        )
        counter.mat_mat(nx, nu, nx)
        self._cache_ready = True

    def solve(
        self,
        counter: OpCounter,
        x0: np.ndarray,
        x_ref: np.ndarray,
        max_iters: int = 12,
        tol: float = 1e-4,
        fixed_iterations: bool = False,
    ) -> TinyMpcResult:
        """One MPC solve (returns the first input of the plan).

        ``fixed_iterations=True`` disables early termination — the
        deterministic-latency mode real-time TinyMPC deployments run in
        (a control loop must budget worst-case time anyway).
        """
        if not self._cache_ready:
            self.setup_cache(counter)
        m = self.model
        n, nx, nu = self.n, m.nx, m.nu

        x = np.tile(x0, (n + 1, 1))
        u = np.zeros((n, nu))
        if self._z is not None:  # shift-warm-start slack and duals
            z = np.vstack([self._z[1:], self._z[-1:]])
            y = np.vstack([self._y[1:], self._y[-1:]])
        else:
            z = np.zeros((n, nu))
            y = np.zeros((n, nu))
        q_lin = -(x_ref @ m.q)  # linear state cost terms
        counter.mat_mat(n + 1, nx, nx)

        iterations = 0
        primal = dual = np.inf
        for it in range(max_iters):
            iterations = it + 1
            counter.loop_overhead(1)
            # Backward pass over linear terms (gains are cached).
            d = np.zeros((n, nu))
            p_vec = q_lin[n].copy()
            counter.store(nx)
            for t in range(n - 1, -1, -1):
                counter.loop_overhead(1)
                r_lin = self.rho * (y[t] - z[t])
                counter.vec_add(nu)
                counter.vec_scale(nu)
                d[t] = self.c1 @ (m.b.T @ p_vec + r_lin)
                counter.mat_vec(nu, nx)
                counter.mat_vec(nu, nu)
                counter.vec_add(nu)
                p_vec = q_lin[t] + self.c2 @ p_vec - self.k_inf.T @ r_lin
                counter.mat_vec(nx, nx)
                counter.mat_vec(nx, nu)
                counter.vec_add(2 * nx)
            # Forward rollout.
            x[0] = x0
            for t in range(n):
                counter.loop_overhead(1)
                u[t] = -(self.k_inf @ x[t]) - d[t]
                counter.mat_vec(nu, nx)
                counter.vec_add(nu)
                x[t + 1] = m.a @ x[t] + m.b @ u[t]
                counter.mat_vec(nx, nx)
                counter.mat_vec(nx, nu)
                counter.vec_add(nx)
            # Projection (box constraints) and dual update.
            z_prev = z
            z = np.clip(u + y, m.u_min, m.u_max)
            counter.vec_add(n * nu)
            counter.fcmp(2 * n * nu)
            y = y + u - z
            counter.vec_add(2 * n * nu)
            primal = float(np.abs(u - z).max())
            dual = float(self.rho * np.abs(z - z_prev).max())
            counter.vec_add(2 * n * nu)
            counter.fcmp(2 * n * nu)
            if not fixed_iterations and primal < tol and dual < tol:
                counter.branch()
                break
        self._z, self._y = z.copy(), y.copy()
        return TinyMpcResult(
            u0=z[0].copy(),
            iterations=iterations,
            primal_residual=primal,
            dual_residual=dual,
            converged=primal < tol and dual < tol,
        )

    @staticmethod
    def flops_per_solve(nx: int = 4, nu: int = 1, horizon: int = 10) -> int:
        """Idealized FLOP tally for one solve (as [19]'s supplement would
        estimate the TinyMPC upgrade): one backward + forward sweep."""
        per_step = 2 * nx * nx + 4 * nx * nu + 6 * nu
        return horizon * per_step + 10 * nx
