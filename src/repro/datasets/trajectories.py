"""Reference trajectories and state sequences for the control kernels.

``fly-traj`` and ``bee-traj`` in the paper's dataset column: hover
set-points, step references, and smooth figure-eight paths, sampled at the
control loop rate, plus randomized initial state perturbations so each
controller actually has work to do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np


@dataclass(frozen=True)
class ReferenceTrajectory:
    """Time-indexed reference states (and optional feedforward inputs)."""

    name: str
    dt: float
    states: np.ndarray  # (N, nx)
    inputs: np.ndarray  # (N, nu) feedforward (possibly zeros)

    def __len__(self) -> int:
        return len(self.states)

    def window(self, start: int, horizon: int) -> np.ndarray:
        """A horizon-length slice of reference states (padded at the end)."""
        idx = np.minimum(np.arange(start, start + horizon), len(self.states) - 1)
        return self.states[idx]


def hover(nx: int, nu: int, n: int = 100, dt: float = 0.002) -> ReferenceTrajectory:
    """All-zero regulation reference (hover at the origin)."""
    return ReferenceTrajectory("hover", dt, np.zeros((n, nx)), np.zeros((n, nu)))


def step(nx: int, nu: int, n: int = 100, dt: float = 0.002,
         channel: int = 0, amplitude: float = 0.1) -> ReferenceTrajectory:
    """Step reference on one state channel at the halfway point."""
    states = np.zeros((n, nx))
    states[n // 2 :, channel] = amplitude
    return ReferenceTrajectory("step", dt, states, np.zeros((n, nu)))


def figure_eight(nx: int, nu: int, n: int = 200, dt: float = 0.002,
                 amplitude: float = 0.15, period_s: float = 1.2,
                 velocity_offset: int = 0) -> ReferenceTrajectory:
    """Lissajous figure-eight on the first two position channels.

    When ``velocity_offset`` is non-zero, the matching velocity reference
    is written ``velocity_offset`` channels after each position channel
    (e.g. 3 for a [p(3), v(3)] state) so trackers get feedforward instead
    of lagging a moving zero-velocity target.
    """
    t = np.arange(n) * dt
    states = np.zeros((n, nx))
    w = 2 * np.pi / period_s
    states[:, 0] = amplitude * np.sin(w * t)
    if nx > 1:
        states[:, 1] = amplitude * np.sin(2 * w * t) / 2
    if velocity_offset:
        states[:, velocity_offset] = amplitude * w * np.cos(w * t)
        if nx > velocity_offset + 1:
            states[:, 1 + velocity_offset] = amplitude * w * np.cos(2 * w * t)
    return ReferenceTrajectory("figure-eight", dt, states, np.zeros((n, nu)))


GENERATORS: Dict[str, Callable[..., ReferenceTrajectory]] = {
    "hover": hover,
    "step": step,
    "figure-eight": figure_eight,
}


def perturbed_initial_state(nx: int, scale: float = 0.05, seed: int = 0) -> np.ndarray:
    """A randomized off-reference initial condition."""
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, scale, size=nx)
