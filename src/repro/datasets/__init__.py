"""Synthetic workload generators replacing the paper's recorded datasets."""

from repro.datasets import images, imu, pose, trajectories

__all__ = ["images", "imu", "pose", "trajectories"]
