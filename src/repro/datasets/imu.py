"""Synthetic IMU / MARG trajectory datasets.

Case Study 2 evaluates attitude filters on three motion profiles:

* ``bee-hover``        — RoboBee hovering (synthesized from motion capture
  in the paper): small, fast attitude oscillations around level.
* ``strider-straight`` — the GammaBot water strider striding in a straight
  line: forward surge oscillation, tiny attitude excursions.
* ``strider-steer``    — GammaBot performing an active steering maneuver:
  large, sustained yaw rates — the hardest profile for narrow fixed-point
  formats, because gyro readings in rad/s are effectively unbounded.

Each dataset provides gyro (rad/s), accelerometer (g-normalized), and
magnetometer (unit field) samples plus ground-truth quaternions, generated
by differentiating a smooth Euler-angle trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

GRAVITY = 9.81
# Reference magnetic field direction (unit vector, NED-ish with dip).
MAG_REFERENCE = np.array([0.43, 0.0, -0.90])
MAG_REFERENCE = MAG_REFERENCE / np.linalg.norm(MAG_REFERENCE)


def quat_from_euler(roll: float, pitch: float, yaw: float) -> np.ndarray:
    """ZYX Euler angles to quaternion (w, x, y, z)."""
    cr, sr = np.cos(roll / 2), np.sin(roll / 2)
    cp, sp = np.cos(pitch / 2), np.sin(pitch / 2)
    cy, sy = np.cos(yaw / 2), np.sin(yaw / 2)
    return np.array(
        [
            cr * cp * cy + sr * sp * sy,
            sr * cp * cy - cr * sp * sy,
            cr * sp * cy + sr * cp * sy,
            cr * cp * sy - sr * sp * cy,
        ]
    )


def quat_to_matrix(q: np.ndarray) -> np.ndarray:
    """Rotation matrix (body→world) from quaternion (w, x, y, z)."""
    w, x, y, z = q
    return np.array(
        [
            [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
            [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
            [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
        ]
    )


def quat_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    aw, ax, ay, az = a
    bw, bx, by, bz = b
    return np.array(
        [
            aw * bw - ax * bx - ay * by - az * bz,
            aw * bx + ax * bw + ay * bz - az * by,
            aw * by - ax * bz + ay * bw + az * bx,
            aw * bz + ax * by - ay * bx + az * bw,
        ]
    )


def quat_conj(q: np.ndarray) -> np.ndarray:
    return np.array([q[0], -q[1], -q[2], -q[3]])


def quat_angle_deg(a: np.ndarray, b: np.ndarray) -> float:
    """Rotation angle between two attitudes, in degrees."""
    d = quat_mul(quat_conj(a), b)
    w = min(1.0, abs(float(d[0])))
    return float(np.degrees(2.0 * np.arccos(w)))


@dataclass(frozen=True)
class ImuSequence:
    """A MARG dataset: sensors plus ground truth at a fixed rate."""

    name: str
    dt: float
    gyro: np.ndarray  # (N, 3) rad/s
    accel: np.ndarray  # (N, 3) in g units (normalized to |g| ~ 1)
    mag: np.ndarray  # (N, 3) unit field
    truth: np.ndarray  # (N, 4) quaternions (w, x, y, z)

    def __len__(self) -> int:
        return len(self.gyro)

    @property
    def rate_hz(self) -> float:
        return 1.0 / self.dt

    def max_sensor_magnitude(self) -> float:
        """Largest absolute value across all sensor channels.

        Fixed-point format feasibility is bounded by this (Case Study 2).
        """
        return float(
            max(np.abs(self.gyro).max(), np.abs(self.accel).max(), np.abs(self.mag).max())
        )

    def with_sensors(
        self,
        gyro: "np.ndarray | None" = None,
        accel: "np.ndarray | None" = None,
        mag: "np.ndarray | None" = None,
        name: "str | None" = None,
    ) -> "ImuSequence":
        """Copy with sensor channels replaced, ground truth untouched.

        The seam sensor-fault injectors (``repro.faults.sensors``) use:
        corrupted datasets keep the clean reference quaternions, so
        attitude error under faults is still measured against the truth.
        """
        return ImuSequence(
            name=name if name is not None else self.name,
            dt=self.dt,
            gyro=gyro if gyro is not None else self.gyro,
            accel=accel if accel is not None else self.accel,
            mag=mag if mag is not None else self.mag,
            truth=self.truth,
        )


def _euler_trajectory_to_sequence(
    name: str,
    times: np.ndarray,
    roll: np.ndarray,
    pitch: np.ndarray,
    yaw: np.ndarray,
    lin_acc_body: np.ndarray,
    gyro_noise: float,
    accel_noise: float,
    mag_noise: float,
    seed: int,
) -> ImuSequence:
    rng = np.random.default_rng(seed)
    dt = float(times[1] - times[0])
    n = len(times)
    truth = np.array([quat_from_euler(roll[i], pitch[i], yaw[i]) for i in range(n)])

    gyro = np.zeros((n, 3))
    for i in range(n):
        j = min(i + 1, n - 1)
        k = max(i - 1, 0)
        dq = quat_mul(quat_conj(truth[k]), truth[j])
        span = (j - k) * dt
        angle = 2.0 * np.arctan2(np.linalg.norm(dq[1:]), dq[0])
        axis = dq[1:] / (np.linalg.norm(dq[1:]) + 1e-12)
        gyro[i] = axis * angle / max(span, dt)

    accel = np.zeros((n, 3))
    mag = np.zeros((n, 3))
    g_world = np.array([0.0, 0.0, -1.0])  # normalized gravity (g units)
    for i in range(n):
        r = quat_to_matrix(truth[i])
        # Specific force in body frame: -g rotated into body, plus motion.
        accel[i] = r.T @ (-g_world) + lin_acc_body[i] / GRAVITY
        mag[i] = r.T @ MAG_REFERENCE

    gyro += rng.normal(0, gyro_noise, gyro.shape)
    accel += rng.normal(0, accel_noise, accel.shape)
    mag += rng.normal(0, mag_noise, mag.shape)
    return ImuSequence(name, dt, gyro, accel, mag, truth)


def bee_hover(n: int = 400, rate_hz: float = 1000.0, seed: int = 0) -> ImuSequence:
    """RoboBee hover: small fast wobbles at flapping-body timescales."""
    dt = 1.0 / rate_hz
    t = np.arange(n) * dt
    roll = 0.06 * np.sin(2 * np.pi * 11.0 * t) + 0.02 * np.sin(2 * np.pi * 3.1 * t)
    pitch = 0.05 * np.sin(2 * np.pi * 9.0 * t + 0.7)
    yaw = 0.03 * np.sin(2 * np.pi * 1.7 * t)
    lin = np.zeros((n, 3))
    lin[:, 2] = 0.4 * np.sin(2 * np.pi * 18.0 * t)  # heave from flapping
    return _euler_trajectory_to_sequence(
        "bee-hover", t, roll, pitch, yaw, lin,
        gyro_noise=0.02, accel_noise=0.015, mag_noise=0.01, seed=seed,
    )


def strider_straight(n: int = 400, rate_hz: float = 500.0, seed: int = 0) -> ImuSequence:
    """GammaBot striding straight: surge oscillation, small attitude motion."""
    dt = 1.0 / rate_hz
    t = np.arange(n) * dt
    roll = 0.015 * np.sin(2 * np.pi * 6.0 * t)
    pitch = 0.04 * np.sin(2 * np.pi * 12.0 * t) + 0.02
    yaw = 0.01 * np.sin(2 * np.pi * 0.8 * t)
    lin = np.zeros((n, 3))
    lin[:, 0] = 2.5 * np.sin(2 * np.pi * 12.0 * t)  # stroke surge
    return _euler_trajectory_to_sequence(
        "strider-straight", t, roll, pitch, yaw, lin,
        gyro_noise=0.03, accel_noise=0.03, mag_noise=0.01, seed=seed,
    )


def strider_steer(n: int = 400, rate_hz: float = 500.0, seed: int = 0) -> ImuSequence:
    """GammaBot steering: sustained large yaw rate — the fixed-point stressor."""
    dt = 1.0 / rate_hz
    t = np.arange(n) * dt
    roll = 0.10 * np.sin(2 * np.pi * 5.0 * t)
    pitch = 0.04 * np.sin(2 * np.pi * 10.0 * t)
    # An aggressive turn: yaw rate peaks near 14 rad/s.
    yaw = 6.0 * (1.0 - np.cos(2 * np.pi * 1.2 * t)) / (2 * np.pi * 1.2) * 2.4
    lin = np.zeros((n, 3))
    lin[:, 0] = 1.2 * np.sin(2 * np.pi * 10.0 * t)
    lin[:, 1] = 1.2 * np.sin(2 * np.pi * 1.2 * t)  # centripetal
    return _euler_trajectory_to_sequence(
        "strider-steer", t, roll, pitch, yaw, lin,
        gyro_noise=0.03, accel_noise=0.03, mag_noise=0.01, seed=seed,
    )


DATASETS: Dict[str, Callable[..., ImuSequence]] = {
    "bee-hover": bee_hover,
    "strider-straight": strider_straight,
    "strider-steer": strider_steer,
}


def load(name: str, **kwargs) -> ImuSequence:
    try:
        gen = DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown IMU dataset {name!r}; known: {sorted(DATASETS)}") from None
    return gen(**kwargs)
