"""Synthetic image datasets.

The paper's perception case study uses three datasets captured with a
NanEyeC micro-camera: a highly textured surface (plus Middlebury frames),
a sparse LED-lit scene mimicking the reduced-exposure trick of [51], and an
AprilTag scene.  Without the camera, these generators synthesize images
with the same controlling statistics:

* ``midd``   — dense natural texture: many corners, strong gradients
  everywhere.  Feature detectors and optical flow do maximum work.
* ``lights`` — a nearly black frame with a few bright blobs: very few
  corner candidates survive the threshold test, so detectors exit early
  almost everywhere and run fastest (the paper's observed ordering).
* ``april``  — high-contrast blocky tag patterns: the densest corner
  population of the three, the most expensive for the detectors.

All images are uint8 grayscale, default 160x160 for feature detection and
80x80 for optical flow, matching the paper's Section V sizes.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

FEATURE_IMAGE_SHAPE = (160, 160)
FLOW_IMAGE_SHAPE = (80, 80)


def _smooth(img: np.ndarray, passes: int = 2) -> np.ndarray:
    """Cheap separable 3-tap blur used during synthesis (not a kernel)."""
    out = img.astype(np.float64)
    kernel = np.array([0.25, 0.5, 0.25])
    for _ in range(passes):
        out = np.apply_along_axis(lambda r: np.convolve(r, kernel, mode="same"), 1, out)
        out = np.apply_along_axis(lambda col: np.convolve(col, kernel, mode="same"), 0, out)
    return out


def textured(shape: Tuple[int, int] = FEATURE_IMAGE_SHAPE, seed: int = 0) -> np.ndarray:
    """Natural-texture stand-in ('midd'): multi-scale smoothed noise."""
    rng = np.random.default_rng(seed)
    h, w = shape
    img = np.zeros((h, w))
    for octave, weight in ((8, 0.5), (16, 0.3), (32, 0.2)):
        coarse = rng.uniform(0, 255, size=(h // octave + 2, w // octave + 2))
        ys = np.linspace(0, coarse.shape[0] - 1.001, h)
        xs = np.linspace(0, coarse.shape[1] - 1.001, w)
        yi, xi = np.floor(ys).astype(int), np.floor(xs).astype(int)
        fy, fx = (ys - yi)[:, None], (xs - xi)[None, :]
        c00 = coarse[np.ix_(yi, xi)]
        c01 = coarse[np.ix_(yi, xi + 1)]
        c10 = coarse[np.ix_(yi + 1, xi)]
        c11 = coarse[np.ix_(yi + 1, xi + 1)]
        layer = (
            c00 * (1 - fy) * (1 - fx)
            + c01 * (1 - fy) * fx
            + c10 * fy * (1 - fx)
            + c11 * fy * fx
        )
        img += weight * layer
    img += rng.normal(0, 6, size=shape)
    return np.clip(img, 0, 255).astype(np.uint8)


def sparse_lights(
    shape: Tuple[int, int] = FEATURE_IMAGE_SHAPE,
    n_lights: int = 8,
    seed: int = 0,
) -> np.ndarray:
    """Sparse LED scene: dark frame, a few saturated Gaussian blobs."""
    rng = np.random.default_rng(seed)
    h, w = shape
    img = rng.normal(6, 2, size=shape)
    yy, xx = np.mgrid[0:h, 0:w]
    for _ in range(n_lights):
        cy, cx = rng.uniform(8, h - 8), rng.uniform(8, w - 8)
        sigma = rng.uniform(1.2, 2.8)
        amp = rng.uniform(180, 255)
        img += amp * np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * sigma**2))
    return np.clip(img, 0, 255).astype(np.uint8)


def april_tags(
    shape: Tuple[int, int] = FEATURE_IMAGE_SHAPE,
    n_tags: int = 16,
    seed: int = 0,
) -> np.ndarray:
    """AprilTag-like scene: dense blocky high-contrast grids over texture.

    The densest corner population of the three datasets — every cell
    boundary is a strong corner — making it the most expensive input for
    the feature detectors, as the paper's Table VI/Fig. 3 show.
    """
    rng = np.random.default_rng(seed)
    h, w = shape
    # Textured background (a tabletop), so inter-tag regions also produce
    # detector work.
    img = textured(shape, seed=seed + 101).astype(np.float64) * 0.5 + 64.0
    for _ in range(n_tags):
        cell = int(rng.integers(3, 5))
        grid = rng.integers(0, 2, size=(8, 8)) * 255
        grid[0, :] = grid[-1, :] = grid[:, 0] = grid[:, -1] = 0  # border
        tag = np.kron(grid, np.ones((cell, cell)))
        th, tw = tag.shape
        y0 = int(rng.integers(2, max(h - th - 2, 3)))
        x0 = int(rng.integers(2, max(w - tw - 2, 3)))
        img[y0 : y0 + th, x0 : x0 + tw] = tag
    img += rng.normal(0, 3, size=shape)
    return np.clip(img, 0, 255).astype(np.uint8)


GENERATORS = {
    "midd": textured,
    "lights": sparse_lights,
    "april": april_tags,
}


def load(name: str, shape: Tuple[int, int] = FEATURE_IMAGE_SHAPE, seed: int = 0) -> np.ndarray:
    """Load a dataset frame by name ('midd', 'lights', 'april')."""
    try:
        gen = GENERATORS[name]
    except KeyError:
        raise KeyError(f"unknown image dataset {name!r}; known: {sorted(GENERATORS)}") from None
    return gen(shape=shape, seed=seed)


def shift_image(img: np.ndarray, dy: float, dx: float) -> np.ndarray:
    """Subpixel-shift an image bilinearly (synthesizes optical-flow pairs)."""
    h, w = img.shape
    yy, xx = np.mgrid[0:h, 0:w].astype(np.float64)
    sy, sx = yy - dy, xx - dx
    sy = np.clip(sy, 0, h - 1.001)
    sx = np.clip(sx, 0, w - 1.001)
    y0, x0 = np.floor(sy).astype(int), np.floor(sx).astype(int)
    fy, fx = sy - y0, sx - x0
    img_f = img.astype(np.float64)
    out = (
        img_f[y0, x0] * (1 - fy) * (1 - fx)
        + img_f[y0, x0 + 1] * (1 - fy) * fx
        + img_f[y0 + 1, x0] * fy * (1 - fx)
        + img_f[y0 + 1, x0 + 1] * fy * fx
    )
    return np.clip(out, 0, 255).astype(np.uint8)


def flow_pair(
    name: str = "midd",
    shape: Tuple[int, int] = FLOW_IMAGE_SHAPE,
    displacement: Tuple[float, float] = (1.6, -2.3),
    noise_std: float = 1.5,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """An optical-flow image pair with known ground-truth displacement."""
    rng = np.random.default_rng(seed + 17)
    frame0 = load(name, shape=shape, seed=seed)
    frame1 = shift_image(frame0, *displacement)
    if noise_std > 0:
        noisy = frame1.astype(np.float64) + rng.normal(0, noise_std, size=shape)
        frame1 = np.clip(noisy, 0, 255).astype(np.uint8)
    return {
        "frame0": frame0,
        "frame1": frame1,
        "true_flow": np.array(displacement, dtype=np.float64),
    }
