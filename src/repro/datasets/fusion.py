"""Synthetic sensor-fusion datasets for the EKF kernels.

* ``fly-synth`` — a RoboFly-style hover/translate flight: time-of-flight
  altitude, optical-flow rate, and IMU pitch observations of a 4-state
  longitudinal model (altitude, horizontal velocity, vertical velocity,
  pitch).  Sensors arrive asynchronously at different rates, which is what
  the sequential/truncated update strategies of [65] exist to handle.
* ``bee-hil``  — a RoboBee-style hardware-in-the-loop trace: ToF + IMU
  observations of a 10-state model (position, velocity, attitude, plus a
  ToF bias state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

GRAVITY = 9.81


@dataclass(frozen=True)
class FusionSample:
    """One time step: true state plus whichever sensors fired."""

    t: float
    true_state: np.ndarray
    imu: Optional[np.ndarray]  # always present (highest rate)
    tof: Optional[float]
    flow: Optional[float]


@dataclass(frozen=True)
class FusionSequence:
    name: str
    dt: float
    samples: List[FusionSample]
    state_dim: int

    def __len__(self) -> int:
        return len(self.samples)


def fly_synth(
    n: int = 200,
    rate_hz: float = 500.0,
    tof_divisor: int = 5,
    flow_divisor: int = 2,
    seed: int = 0,
) -> FusionSequence:
    """RoboFly 4-state flight: x = [z, vx, vz, theta].

    The robot oscillates gently around a 0.5 m hover while translating.
    ToF fires every ``tof_divisor`` steps and optical flow every
    ``flow_divisor`` steps — asynchronous, like the real avionics.
    """
    rng = np.random.default_rng(seed)
    dt = 1.0 / rate_hz
    t = np.arange(n) * dt
    z = 0.5 + 0.08 * np.sin(2 * np.pi * 0.8 * t)
    vx = 0.3 * np.sin(2 * np.pi * 0.5 * t)
    vz = np.gradient(z, dt)
    theta = 0.1 * np.sin(2 * np.pi * 1.3 * t)
    theta_dot = np.gradient(theta, dt)

    samples = []
    for i in range(n):
        state = np.array([z[i], vx[i], vz[i], theta[i]])
        imu = np.array(
            [
                theta_dot[i] + rng.normal(0, 0.02),  # pitch rate (gyro)
                theta[i] + rng.normal(0, 0.01),  # pitch (from accel tilt)
            ]
        )
        tof = None
        if i % tof_divisor == 0:
            # Range along the body axis: z / cos(theta), plus noise.
            tof = z[i] / np.cos(theta[i]) + rng.normal(0, 0.004)
        flow = None
        if i % flow_divisor == 0:
            # Ventral optical flow: vx / z - theta_dot, plus noise.
            flow = vx[i] / z[i] - theta_dot[i] + rng.normal(0, 0.05)
        samples.append(FusionSample(t[i], state, imu, tof, flow))
    return FusionSequence("fly-synth", dt, samples, state_dim=4)


def bee_hil(
    n: int = 100,
    rate_hz: float = 250.0,
    tof_divisor: int = 2,
    seed: int = 0,
) -> FusionSequence:
    """RoboBee 10-state HIL trace: x = [p(3), v(3), att(3), tof_bias].

    IMU provides body rates and specific force each step; ToF provides a
    biased altitude range at a lower rate.
    """
    rng = np.random.default_rng(seed)
    dt = 1.0 / rate_hz
    t = np.arange(n) * dt
    p = np.column_stack(
        [
            0.05 * np.sin(2 * np.pi * 0.6 * t),
            0.05 * np.sin(2 * np.pi * 0.4 * t + 1.0),
            0.4 + 0.05 * np.sin(2 * np.pi * 0.9 * t),
        ]
    )
    v = np.gradient(p, dt, axis=0)
    att = np.column_stack(
        [
            0.08 * np.sin(2 * np.pi * 2.0 * t),
            0.06 * np.sin(2 * np.pi * 1.7 * t + 0.4),
            0.05 * np.sin(2 * np.pi * 0.3 * t),
        ]
    )
    att_dot = np.gradient(att, dt, axis=0)
    a_lin = np.gradient(v, dt, axis=0)
    tof_bias = 0.015

    samples = []
    for i in range(n):
        state = np.concatenate([p[i], v[i], att[i], [tof_bias]])
        imu = np.concatenate(
            [
                att_dot[i] + rng.normal(0, 0.02, 3),  # body rates
                a_lin[i] + np.array([0, 0, GRAVITY]) + rng.normal(0, 0.05, 3),
            ]
        )
        tof = None
        if i % tof_divisor == 0:
            roll, pitch = att[i, 0], att[i, 1]
            tof = p[i, 2] / (np.cos(roll) * np.cos(pitch)) + tof_bias
            tof += rng.normal(0, 0.003)
        samples.append(FusionSample(t[i], state, imu, tof, None))
    return FusionSequence("bee-hil", dt, samples, state_dim=10)


DATASETS: Dict[str, callable] = {"fly-synth": fly_synth, "bee-hil": bee_hil}


def load(name: str, **kwargs) -> FusionSequence:
    try:
        gen = DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown fusion dataset {name!r}; known: {sorted(DATASETS)}") from None
    return gen(**kwargs)
