"""Synthetic geometric pose-estimation problems.

Case Study 4 (and the Table III/IV pose rows) evaluate solvers on
synthetically generated problems "as commonly done in pose estimation
literature": random scenes, controlled pixel noise, controlled outlier
ratios, and optional structural priors (known gravity direction, planar
motion) that the upright solver family exploits.

Conventions: cameras look down +z; image points are normalized coordinates
(pixel noise is converted through a nominal focal length); the world
vertical is the camera y-axis for "upright" problems, so upright rotations
are pure y-axis (yaw) rotations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Nominal focal length (pixels) used to convert pixel noise to normalized
#: image coordinates — matches small-sensor optics like the NanEyeC.
NOMINAL_FOCAL_PX = 500.0


def random_rotation(rng: np.random.Generator, max_angle_rad: float = np.pi) -> np.ndarray:
    """Uniform random rotation, optionally bounded in angle."""
    axis = rng.normal(size=3)
    axis /= np.linalg.norm(axis)
    angle = rng.uniform(-max_angle_rad, max_angle_rad)
    return axis_angle(axis, angle)


def axis_angle(axis: np.ndarray, angle: float) -> np.ndarray:
    """Rodrigues rotation matrix from a unit axis and an angle."""
    axis = np.asarray(axis, dtype=np.float64)
    k = np.array(
        [[0, -axis[2], axis[1]], [axis[2], 0, -axis[0]], [-axis[1], axis[0], 0]]
    )
    return np.eye(3) + np.sin(angle) * k + (1 - np.cos(angle)) * (k @ k)


def yaw_rotation(angle: float) -> np.ndarray:
    """Rotation about the camera y-axis (the upright/gravity axis)."""
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])


def rotation_angle_deg(r1: np.ndarray, r2: np.ndarray) -> float:
    """Geodesic distance between two rotations, degrees."""
    cos = (np.trace(r1.T @ r2) - 1.0) / 2.0
    return float(np.degrees(np.arccos(np.clip(cos, -1.0, 1.0))))


def translation_direction_error_deg(t1: np.ndarray, t2: np.ndarray) -> float:
    """Angle between two translation directions, degrees (scale-free)."""
    a = t1 / (np.linalg.norm(t1) + 1e-12)
    b = t2 / (np.linalg.norm(t2) + 1e-12)
    return float(np.degrees(np.arccos(np.clip(abs(np.dot(a, b)), -1.0, 1.0))))


def _project(points_cam: np.ndarray) -> np.ndarray:
    """Pinhole projection to normalized image coordinates."""
    return points_cam[:, :2] / points_cam[:, 2:3]


def _add_pixel_noise(points: np.ndarray, noise_px: float, rng) -> np.ndarray:
    if noise_px <= 0:
        return points
    return points + rng.normal(0, noise_px / NOMINAL_FOCAL_PX, size=points.shape)


@dataclass
class AbsolutePoseProblem:
    """World points + their image observations; recover camera pose.

    Pose convention: ``x_cam = R @ x_world + t``.
    """

    points_world: np.ndarray  # (N, 3)
    points_image: np.ndarray  # (N, 2) normalized coordinates
    r_true: np.ndarray
    t_true: np.ndarray
    inlier_mask: np.ndarray  # (N,) bool
    gravity_body: np.ndarray  # gravity (world y-axis) seen in camera frame

    @property
    def n(self) -> int:
        return len(self.points_world)


def make_absolute_problem(
    n_points: int = 20,
    noise_px: float = 0.5,
    outlier_ratio: float = 0.0,
    upright: bool = False,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> AbsolutePoseProblem:
    """Random absolute-pose problem (abs-synth / up-abs-synth datasets)."""
    rng = rng if rng is not None else np.random.default_rng(seed)
    if upright:
        r = yaw_rotation(rng.uniform(-np.pi, np.pi))
    else:
        r = random_rotation(rng)
    t = rng.uniform(-1.0, 1.0, size=3)
    t[2] = abs(t[2]) + 4.0  # keep the scene in front of the camera

    # World points sampled so their camera-frame depth is positive.
    pts_cam = np.column_stack(
        [
            rng.uniform(-2.0, 2.0, n_points),
            rng.uniform(-2.0, 2.0, n_points),
            rng.uniform(3.0, 9.0, n_points),
        ]
    )
    pts_world = (pts_cam - t) @ r  # inverse transform: R^T (x_cam - t)
    img = _add_pixel_noise(_project(pts_cam), noise_px, rng)

    inliers = np.ones(n_points, dtype=bool)
    n_out = int(round(outlier_ratio * n_points))
    if n_out > 0:
        idx = rng.choice(n_points, size=n_out, replace=False)
        img[idx] = rng.uniform(-0.6, 0.6, size=(n_out, 2))
        inliers[idx] = False

    gravity_body = r @ np.array([0.0, 1.0, 0.0])
    return AbsolutePoseProblem(pts_world, img, r, t, inliers, gravity_body)


@dataclass
class RelativePoseProblem:
    """Two-view correspondences; recover relative pose (R, t up to scale).

    Convention: ``x2_cam = R @ x1_cam + t``.
    """

    x1: np.ndarray  # (N, 2) normalized coordinates, view 1
    x2: np.ndarray  # (N, 2) normalized coordinates, view 2
    r_true: np.ndarray
    t_true: np.ndarray
    inlier_mask: np.ndarray
    planar: bool
    upright: bool

    @property
    def n(self) -> int:
        return len(self.x1)

    def essential_true(self) -> np.ndarray:
        t = self.t_true
        tx = np.array([[0, -t[2], t[1]], [t[2], 0, -t[0]], [-t[1], t[0], 0]])
        return tx @ self.r_true


def make_relative_problem(
    n_points: int = 20,
    noise_px: float = 0.5,
    outlier_ratio: float = 0.0,
    upright: bool = False,
    planar: bool = False,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> RelativePoseProblem:
    """Random relative-pose problem (rel-synth / str-rel-synth datasets).

    ``upright`` restricts rotation to yaw (gravity known); ``planar``
    additionally restricts translation to the ground (xz) plane — the water
    strider's motion model.
    """
    rng = rng if rng is not None else np.random.default_rng(seed)
    if upright or planar:
        r = yaw_rotation(rng.uniform(-0.8, 0.8))
    else:
        r = random_rotation(rng, max_angle_rad=0.8)
    t = rng.uniform(-1.0, 1.0, size=3)
    if planar:
        t[1] = 0.0
    nrm = np.linalg.norm(t)
    if nrm < 0.3:  # avoid degenerate near-zero baselines
        t = t / (nrm + 1e-12) * 0.5
    pts1 = np.column_stack(
        [
            rng.uniform(-2.0, 2.0, n_points),
            rng.uniform(-2.0, 2.0, n_points),
            rng.uniform(4.0, 10.0, n_points),
        ]
    )
    pts2 = pts1 @ r.T + t
    x1 = _add_pixel_noise(_project(pts1), noise_px, rng)
    x2 = _add_pixel_noise(_project(pts2), noise_px, rng)

    inliers = np.ones(n_points, dtype=bool)
    n_out = int(round(outlier_ratio * n_points))
    if n_out > 0:
        idx = rng.choice(n_points, size=n_out, replace=False)
        x2[idx] = rng.uniform(-0.5, 0.5, size=(n_out, 2))
        inliers[idx] = False
    return RelativePoseProblem(x1, x2, r, t, inliers, planar, upright)


@dataclass
class HomographyProblem:
    """Planar-scene correspondences; recover the homography."""

    x1: np.ndarray
    x2: np.ndarray
    h_true: np.ndarray
    inlier_mask: np.ndarray

    @property
    def n(self) -> int:
        return len(self.x1)


def make_homography_problem(
    n_points: int = 20,
    noise_px: float = 0.5,
    outlier_ratio: float = 0.0,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> HomographyProblem:
    """Random planar-scene problem (homog-synth dataset)."""
    rng = rng if rng is not None else np.random.default_rng(seed)
    r = random_rotation(rng, max_angle_rad=0.5)
    t = rng.uniform(-0.8, 0.8, size=3)
    plane_n = np.array([0.0, 0.0, 1.0])
    plane_d = 6.0
    h = r + np.outer(t, plane_n) / plane_d

    pts1 = np.column_stack(
        [
            rng.uniform(-2.0, 2.0, n_points),
            rng.uniform(-2.0, 2.0, n_points),
            np.full(n_points, plane_d),
        ]
    )
    pts2 = pts1 @ r.T + t
    x1 = _add_pixel_noise(_project(pts1), noise_px, rng)
    x2 = _add_pixel_noise(_project(pts2), noise_px, rng)

    inliers = np.ones(n_points, dtype=bool)
    n_out = int(round(outlier_ratio * n_points))
    if n_out > 0:
        idx = rng.choice(n_points, size=n_out, replace=False)
        x2[idx] = rng.uniform(-0.5, 0.5, size=(n_out, 2))
        inliers[idx] = False
    return HomographyProblem(x1, x2, h / h[2, 2], inliers)
