#!/usr/bin/env python3
"""Regenerate the paper's full workload characterization from the CLI.

Runs the complete 31-kernel suite on all three characterization cores with
caches on and off (186 configurations, 400+ measured datapoints with the
default repetitions) and prints Tables III, IV, and V.

Run:  python examples/full_characterization.py [--reps N]
"""

import argparse
import sys
import time

from repro.analysis import tables
from repro.core.config import HarnessConfig


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=1,
                        help="measured repetitions per configuration")
    parser.add_argument("--warmup", type=int, default=0,
                        help="cache warm-up repetitions")
    args = parser.parse_args(argv)

    config = HarnessConfig(reps=args.reps, warmup_reps=args.warmup)

    print("=" * 76)
    print("Table V — Considered Cortex-M architectures")
    print("=" * 76)
    print(tables.render_table5(tables.table5_architectures()))

    print()
    print("=" * 76)
    print("Table III — Static metrics (flash + instruction mix)")
    print("=" * 76)
    print(tables.render_table3(tables.table3_static()))

    print()
    print("=" * 76)
    print("Table IV — Dynamic metrics (latency / energy / peak power, C/NC)")
    print("=" * 76)
    start = time.time()
    sweep = tables.table4_dynamic(config=config)
    print(tables.render_table4(sweep, kernels=tables.TABLE_KERNELS))
    print()
    print(f"configurations: {len(sweep)}  measured datapoints: "
          f"{sweep.datapoints()}  wall time: {time.time() - start:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
