#!/usr/bin/env python3
"""Scenario: choosing an MCU for a flapping-wing robot's autonomy stack.

A robot designer has a candidate sensing-to-control pipeline — attitude
filtering at 1 kHz, a RoboFly-style EKF at 500 Hz, and TinyMPC at 500 Hz —
and must pick a core.  This script runs the pipeline's kernels across the
Cortex-M4 / M33 / M7 and reports, per core:

* whether every kernel fits on-chip memory,
* the pipeline's total per-cycle compute time vs its rate budget, and
* the energy per second of autonomy (what actually drains the battery).

This is the paper's intended use of the suite: measurement-driven MCU
selection instead of FLOP arithmetic.

Run:  python examples/mcu_selection.py
"""

from repro.core import registry
from repro.core.config import HarnessConfig
from repro.core.harness import Harness
from repro.mcu import CACHE_ON, CHARACTERIZATION_ARCHS

#: The pipeline: (kernel, loop rate in Hz, factory overrides).
PIPELINE = [
    ("madgwick", 1000.0, {"n_samples": 150}),
    ("fly-ekf (trunc)", 500.0, {"n_samples": 150}),
    ("fly-tiny-mpc", 500.0, {"n_steps": 20}),
]


def main() -> None:
    config = HarnessConfig(reps=1, warmup_reps=0)
    print(f"{'core':8s} {'fits':>5s} {'busy %':>7s} {'mW avg':>8s} "
          f"{'mJ / s of flight':>17s}  breakdown (us/update)")
    print("-" * 90)

    for arch in CHARACTERIZATION_ARCHS:
        harness = Harness(arch, config)
        fits_all = True
        busy_fraction = 0.0
        energy_per_s = 0.0
        parts = []
        for kernel, rate_hz, overrides in PIPELINE:
            problem = registry.create(kernel, **overrides)
            result = harness.run(problem, CACHE_ON)
            if not result.fits:
                fits_all = False
                parts.append(f"{kernel}=DNF")
                continue
            per_update_s = result.unit_latency_us * 1e-6
            busy_fraction += per_update_s * rate_hz
            energy_per_s += result.unit_energy_uj * 1e-6 * rate_hz * 1e3  # mJ/s
            parts.append(f"{kernel}={result.unit_latency_us:.1f}")
        feasible = fits_all and busy_fraction < 1.0
        # mJ per second of flight is numerically the average compute
        # power in mW.
        print(f"{arch.name:8s} {'yes' if fits_all else 'NO':>5s} "
              f"{busy_fraction * 100:6.1f}% "
              f"{energy_per_s:8.2f} "
              f"{energy_per_s:17.3f}  {'  '.join(parts)}"
              + ("" if feasible else "   << infeasible"))

    print()
    print("Reading the table: every core fits this pipeline, but the M33")
    print("delivers it at a fraction of the energy (its modern process")
    print("node), while the M7 buys headroom for heavier perception at a")
    print("power cost — the paper's Section V conclusion.")


if __name__ == "__main__":
    main()
