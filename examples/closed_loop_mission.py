#!/usr/bin/env python3
"""Scenario: from kernel timings to mission outcomes (Section VI.E).

The paper's roadmap asks what kernel tables alone cannot answer: does a
cheaper core actually *fly worse*, or just slower on paper?  This script
runs the same closed-loop hover and steering missions — real dynamics,
real estimation and control kernels, compute priced per control step — on
the Cortex-M0+, M33, and M4, and reports task-level metrics next to
compute cost.

The punchline: the M0+'s soft-float latency blows the loop deadline, the
runner degrades the control rate accordingly, and the hover *fails* — the
compute-autonomy gap made visible end to end.

Run:  python examples/closed_loop_mission.py
"""

from repro.api import (
    FlappingWingRunner,
    HoverMission,
    SteeringCourse,
    StriderRunner,
    WaypointMission,
)
from repro.mcu.arch import M0PLUS, M4, M33


def show(result, arch_name: str) -> None:
    status = "OK  " if result.completed else "FAIL"
    print(f"  {arch_name:8s} {status} rms={result.path_error_rms_m:7.3f} "
          f"max={result.path_error_max_m:7.3f} "
          f"rate={result.effective_rate_hz:6.0f}Hz "
          f"deadline={result.deadline_hit_rate:5.0%} "
          f"compute={result.compute_energy_mj:7.2f}mJ "
          f"({result.compute_latency_s * 1e6:5.1f}us/step)")


def main() -> None:
    print("Flapping-wing hover (2 kHz attitude loop: Mahony + SE(3) geometric)")
    for arch in (M33, M4, M0PLUS):
        show(FlappingWingRunner(arch=arch).run(HoverMission()), arch.name)

    print("\nFlapping-wing waypoint traverse")
    for arch in (M33, M4):
        show(FlappingWingRunner(arch=arch).run(WaypointMission()), arch.name)

    print("\nWater-strider steering course (200 Hz: SMAC yaw control)")
    for arch in (M33, M4, M0PLUS):
        show(StriderRunner(arch=arch).run(SteeringCourse()), arch.name)

    print("\nReading the results:")
    print("* M33 and M4 fly the same mission; the M33 does it on a third of")
    print("  the compute energy (process node, again).")
    print("* The M0+ cannot meet the 2 kHz attitude deadline in soft float;")
    print("  the effective rate collapses and hover fails — kernel latency")
    print("  becoming a task-level failure, the coupling Section VI.E is")
    print("  after.")
    print("* The gentler 200 Hz strider loop is feasible even on the M0+,")
    print("  which is exactly why sub-gram crawlers/striders ship with")
    print("  much smaller processors than flyers.")


if __name__ == "__main__":
    main()
