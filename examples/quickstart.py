#!/usr/bin/env python3
"""Quickstart: benchmark one kernel on one simulated core.

Mirrors the paper's artifact example (a single benchmark flashed to a
board, measured through the GPIO + current-probe chain): we run the Mahony
attitude filter on the simulated Cortex-M4, capture the run with the
simulated logic analyzer and current probe, and recover latency, energy,
and peak power from the synchronized traces — then compare against the
model's direct report.

Run:  python examples/quickstart.py
"""

from repro.core import registry
from repro.core.config import HarnessConfig
from repro.core.harness import Harness
from repro.instrumentation import (
    GpioBus,
    LogicAnalyzer,
    PowerMonitor,
    extract_measurements,
    summarize,
    synchronize,
)
from repro.mcu import CACHE_ON, M4


def main() -> None:
    # 1. Wire up the measurement chain, as on the real bench: the logic
    #    analyzer watches the ROI pin; the current probe arms on the
    #    trigger pin.
    bus = GpioBus()
    analyzer = LogicAnalyzer(bus)
    probe = PowerMonitor()
    bus.subscribe(probe.on_gpio)
    analyzer.start()
    probe.arm()

    # 2. Build the harness for the target core and run a kernel from the
    #    registry (any of the 31 suite kernels works here).
    config = HarnessConfig(reps=5, warmup_reps=2)
    harness = Harness(M4, config, gpio=bus, power_monitor=probe)
    problem = registry.create("mahony", n_samples=200)
    result = harness.run(problem, CACHE_ON)

    print(f"kernel      : {problem.name} [{problem.scalar}] on {M4.core}")
    print(f"validated   : {result.all_valid}")
    print(f"model report: {result.unit_latency_us:8.2f} us/update, "
          f"{result.unit_energy_uj * 1e3:8.1f} nJ/update, "
          f"peak {result.peak_power_mw:.0f} mW")

    # 3. Recover the same metrics from the captured traces, exactly as the
    #    paper's analysis scripts do from the Saleae + STLINK-V3PWR logs.
    capture = synchronize(analyzer, probe.capture())
    recovered = summarize(extract_measurements(capture))
    per_update = result.work_units
    print(f"trace-based : {recovered.latency_us / per_update:8.2f} us/update, "
          f"{recovered.energy_uj * 1e3 / per_update:8.1f} nJ/update, "
          f"peak {recovered.peak_power_w * 1e3:.0f} mW")
    print(f"ROI windows : {len(capture.rois)} "
          f"({config.warmup_reps} warm-up + {config.reps} measured)")


if __name__ == "__main__":
    main()
