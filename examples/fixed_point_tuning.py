#!/usr/bin/env python3
"""Scenario: can this robot drop the FPU? (Case Study 2, end to end)

A water-strider robot wants a Cortex-M0+ (no FPU) to save weight and PCB
area.  Its attitude filter must then run in fixed point — but which Q
format survives the robot's actual maneuvers?  This script sweeps the full
Q(m, 31-m) range for the Mahony filter over three motion profiles, prints
the feasibility map, and compares the surviving format's latency/energy on
the M0+ against f32 on an M4 — the racing-to-idle trade-off.

Run:  python examples/fixed_point_tuning.py
"""

from repro.analysis import attitude_study
from repro.core import registry
from repro.core.config import HarnessConfig
from repro.core.harness import Harness
from repro.mcu import CACHE_ON, get_arch
from repro.scalar import F32, parse_scalar

INT_BITS = range(1, 29)
DATASETS = ("bee-hover", "strider-straight", "strider-steer")


def main() -> None:
    print("Sweeping Q formats for mahony (IMU) across maneuvers...")
    rows = attitude_study.fixed_point_failure_sweep(
        filters=[("mahony", "mahony (I)")],
        datasets=DATASETS,
        int_bits_range=INT_BITS,
        n_samples=150,
    )

    print(f"\n{'dataset':18s} integer bits 1..28 (X = fails, . = ok)")
    windows = {}
    for dataset in DATASETS:
        marks = []
        for int_bits in INT_BITS:
            row = next(r for r in rows
                       if r["dataset"] == dataset and r["q_int"] == int_bits)
            marks.append("X" if row["failed"] else ".")
        windows[dataset] = attitude_study.feasible_window(rows, "mahony (I)", dataset)
        print(f"{dataset:18s} {''.join(marks)}")

    # A format must survive every maneuver the robot performs.
    common = set(windows[DATASETS[0]])
    for dataset in DATASETS[1:]:
        common &= set(windows[dataset])
    if not common:
        print("\nNo Q format survives all maneuvers — keep the FPU.")
        return
    chosen_bits = sorted(common)[len(common) // 2]
    chosen = parse_scalar(f"q{chosen_bits}.{31 - chosen_bits}")
    print(f"\nFormats surviving all maneuvers: "
          f"{['q%d.%d' % (b, 31 - b) for b in sorted(common)]}")
    print(f"Chosen format: {chosen.name}")

    # The cost question: q-format on the M0+ vs f32 on an M4.
    config = HarnessConfig(reps=1, warmup_reps=0)
    print(f"\n{'config':22s} {'us/update':>10s} {'nJ/update':>10s} {'peak mW':>8s}")
    for arch_name, scalar in (("m0plus", chosen), ("m0plus", F32),
                              ("m4", F32), ("m33", F32)):
        problem = registry.create("mahony", scalar=scalar, n_samples=150,
                                  dataset="strider-steer")
        result = Harness(get_arch(arch_name), config).run(problem, CACHE_ON)
        print(f"{arch_name + ' ' + scalar.name:22s} "
              f"{result.unit_latency_us:10.2f} "
              f"{result.unit_energy_uj * 1e3:10.1f} "
              f"{result.peak_power_mw:8.0f}")

    print("\nReading the table: fixed point rescues the M0+ from its")
    print("soft-float cliff, but an M4/M33 racing to idle in f32 still wins")
    print("on energy — fixed point pays off only when area or integration")
    print("constraints dominate (the paper's Case Study 2 conclusion).")


if __name__ == "__main__":
    main()
