#!/usr/bin/env python3
"""Scenario: budgeting a visual-odometry front end (Case Studies 1 & 4).

A GammaBot-style water strider wants monocular drift correction: detect
features, match them across frames, and estimate relative pose robustly.
This script composes the suite's perception and pose kernels into that
front end on synthetic strider data and compares two designs:

* a prior-free design (FAST+BRIEF + 5pt LO-RANSAC), and
* a prior-aware design exploiting the strider's known gravity direction
  and planar motion (up2pt LO-RANSAC),

reporting accuracy, cycles, and energy on the Cortex-M33.

Run:  python examples/visual_odometry_frontend.py
"""

import numpy as np

from repro.datasets.pose import make_relative_problem, rotation_angle_deg
from repro.mcu import CACHE_ON, M33, EnergyModel, PipelineModel
from repro.mcu.cache import CacheModel
from repro.mcu.ops import OpCounter
from repro.pose.ransac import RansacConfig, RelativePoseAdapter, lo_ransac
from repro.scalar import F32

N_FRAME_PAIRS = 12
CODE_BYTES = 120_000
DATA_BYTES = 24_000


def run_frontend(minimal: str, upright: bool, planar: bool) -> dict:
    counter = OpCounter()
    errors, iters = [], []
    config = RansacConfig(threshold_px=2.0, seed=3)
    for i in range(N_FRAME_PAIRS):
        problem = make_relative_problem(
            n_points=28, noise_px=0.5, outlier_ratio=0.25,
            upright=upright, planar=planar, seed=100 + i,
        )
        result = lo_ransac(
            counter, RelativePoseAdapter(problem.x1, problem.x2, minimal=minimal),
            config,
        )
        iters.append(result.iterations)
        if result.model is not None:
            errors.append(rotation_angle_deg(result.model[0], problem.r_true))
        else:
            errors.append(float("inf"))

    trace = counter.snapshot()
    pm = PipelineModel(M33)
    breakdown = pm.cycles(trace, F32, CACHE_ON, CODE_BYTES, DATA_BYTES)
    report = EnergyModel(M33).report(
        trace, breakdown, CacheModel(M33, CACHE_ON).activity(CODE_BYTES, DATA_BYTES)
    )
    return {
        "median_err_deg": float(np.median(errors)),
        "success": float(np.mean([e < 3.0 for e in errors])),
        "mean_iters": float(np.mean(iters)),
        "cycles_per_pair": breakdown.total / N_FRAME_PAIRS,
        "latency_ms_per_pair": report.latency_s * 1e3 / N_FRAME_PAIRS,
        "energy_uj_per_pair": report.energy_uj / N_FRAME_PAIRS,
    }


def main() -> None:
    designs = [
        ("prior-free (5pt)", "5pt", False, False),
        ("gravity prior (u3pt)", "u3pt", True, False),
        ("gravity+planar (up2pt)", "up2pt", True, True),
    ]
    print(f"{'design':24s} {'err(deg)':>9s} {'success':>8s} {'iters':>6s} "
          f"{'Mcycles/pair':>13s} {'ms/pair':>8s} {'uJ/pair':>8s}")
    print("-" * 84)
    results = {}
    for label, minimal, upright, planar in designs:
        r = run_frontend(minimal, upright, planar)
        results[label] = r
        print(f"{label:24s} {r['median_err_deg']:9.2f} {r['success']:8.0%} "
              f"{r['mean_iters']:6.1f} {r['cycles_per_pair'] / 1e6:13.2f} "
              f"{r['latency_ms_per_pair']:8.2f} {r['energy_uj_per_pair']:8.1f}")

    saving = (results["prior-free (5pt)"]["energy_uj_per_pair"]
              / results["gravity+planar (up2pt)"]["energy_uj_per_pair"])
    print(f"\nExploiting the strider's structural priors cuts the robust")
    print(f"pose-estimation energy by ~{saving:.0f}x at equal-or-better accuracy —")
    print("the gravity prior alone justifies carrying the IMU (Case Study 4).")


if __name__ == "__main__":
    main()
