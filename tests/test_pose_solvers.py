"""Tests for the geometric pose solvers (absolute, relative, upright, 5pt)."""

import numpy as np
import pytest

from repro.datasets.pose import (
    make_absolute_problem,
    make_homography_problem,
    make_relative_problem,
    rotation_angle_deg,
    translation_direction_error_deg,
)
from repro.mcu.ops import OpCounter
from repro.pose.absolute import (
    absolute_gold_standard,
    dlt,
    p3p,
    solve_best_absolute,
    up2p,
)
from repro.pose.fivept import five_point, five_point_essentials
from repro.pose.geometry import (
    cheirality_count,
    decompose_essential,
    essential_from_pose,
    homogeneous,
    orthonormalize,
    reprojection_error,
    sampson_error,
    skew,
    triangulate_point,
)
from repro.pose.relative import (
    eight_point,
    eight_point_essential,
    homography_dlt,
    homography_transfer_error,
    relative_gold_standard,
)
from repro.pose.upright import u3pt, up2pt, up3pt

SEEDS = range(8)


class TestGeometryUtils:
    def test_skew_antisymmetric(self):
        s = skew(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(s, -s.T)

    def test_homogeneous(self):
        h = homogeneous(np.array([[1.0, 2.0]]))
        assert h.tolist() == [[1.0, 2.0, 1.0]]

    def test_triangulation_recovers_point(self):
        prob = make_relative_problem(n_points=5, noise_px=0.0, seed=0)
        c = OpCounter()
        x1h = homogeneous(prob.x1[:1])[0]
        x2h = homogeneous(prob.x2[:1])[0]
        p = triangulate_point(c, x1h, x2h, prob.r_true, prob.t_true)
        # Reproject: should match observation.
        assert p[:2] / p[2] == pytest.approx(prob.x1[0], abs=1e-9)

    def test_cheirality_prefers_true_pose(self):
        prob = make_relative_problem(n_points=6, noise_px=0.0, seed=1)
        c = OpCounter()
        good = cheirality_count(c, prob.x1, prob.x2, prob.r_true, prob.t_true)
        bad = cheirality_count(c, prob.x1, prob.x2, prob.r_true, -prob.t_true)
        assert good == 3
        assert bad < good

    def test_decompose_essential_roundtrip(self):
        prob = make_relative_problem(n_points=8, noise_px=0.0, seed=2)
        c = OpCounter()
        e = essential_from_pose(prob.r_true, prob.t_true)
        pose = decompose_essential(c, e, prob.x1, prob.x2)
        assert pose is not None
        assert rotation_angle_deg(pose[0], prob.r_true) < 0.01
        assert translation_direction_error_deg(pose[1], prob.t_true) < 0.1

    def test_sampson_error_zero_for_inliers(self):
        prob = make_relative_problem(n_points=10, noise_px=0.0, seed=3)
        c = OpCounter()
        err = sampson_error(c, prob.essential_true(), prob.x1, prob.x2)
        assert err.max() < 1e-16

    def test_reprojection_error_flags_behind_camera(self):
        c = OpCounter()
        world = np.array([[0.0, 0.0, -5.0]])
        err = reprojection_error(c, np.eye(3), np.zeros(3), world,
                                 np.array([[0.0, 0.0]]))
        assert np.isinf(err[0])

    def test_orthonormalize_projects_to_so3(self):
        c = OpCounter()
        noisy = np.eye(3) + 0.05 * np.random.default_rng(0).normal(size=(3, 3))
        r = orthonormalize(c, noisy)
        assert np.allclose(r @ r.T, np.eye(3), atol=1e-10)
        assert np.linalg.det(r) == pytest.approx(1.0)


class TestAbsoluteSolvers:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_p3p_exact(self, seed):
        prob = make_absolute_problem(n_points=8, noise_px=0.0, seed=seed)
        c = OpCounter()
        pose = solve_best_absolute(c, p3p, prob.points_world[:3],
                                   prob.points_image[:3],
                                   prob.points_world, prob.points_image)
        assert pose is not None
        assert rotation_angle_deg(pose[0], prob.r_true) < 0.1
        assert np.linalg.norm(pose[1] - prob.t_true) < 0.01

    @pytest.mark.parametrize("seed", SEEDS)
    def test_up2p_exact(self, seed):
        prob = make_absolute_problem(n_points=6, noise_px=0.0, upright=True,
                                     seed=seed)
        c = OpCounter()
        pose = solve_best_absolute(c, up2p, prob.points_world[:2],
                                   prob.points_image[:2],
                                   prob.points_world, prob.points_image)
        assert pose is not None
        assert rotation_angle_deg(pose[0], prob.r_true) < 0.1

    def test_up2p_returns_yaw_rotations(self):
        prob = make_absolute_problem(n_points=4, noise_px=0.0, upright=True, seed=1)
        c = OpCounter()
        for r, _ in up2p(c, prob.points_world[:2], prob.points_image[:2]):
            assert np.allclose(r @ [0, 1, 0], [0, 1, 0], atol=1e-9)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_dlt_exact(self, seed):
        prob = make_absolute_problem(n_points=10, noise_px=0.0, seed=seed)
        c = OpCounter()
        poses = dlt(c, prob.points_world, prob.points_image)
        assert poses
        assert rotation_angle_deg(poses[0][0], prob.r_true) < 0.1

    def test_dlt_needs_six_points(self):
        prob = make_absolute_problem(n_points=5, seed=0)
        with pytest.raises(ValueError):
            dlt(OpCounter(), prob.points_world, prob.points_image)

    def test_gold_standard_beats_dlt_under_noise(self):
        errors_dlt, errors_gold = [], []
        for seed in range(10):
            prob = make_absolute_problem(n_points=14, noise_px=1.0, seed=seed)
            c = OpCounter()
            d = dlt(c, prob.points_world, prob.points_image)
            g = absolute_gold_standard(c, prob.points_world, prob.points_image)
            errors_dlt.append(rotation_angle_deg(d[0][0], prob.r_true))
            errors_gold.append(rotation_angle_deg(g[0][0], prob.r_true))
        assert np.median(errors_gold) <= np.median(errors_dlt)

    def test_p3p_wrong_input_size(self):
        with pytest.raises(ValueError):
            p3p(OpCounter(), np.zeros((4, 3)), np.zeros((4, 2)))


class TestRelativeSolvers:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_eight_point_exact(self, seed):
        prob = make_relative_problem(n_points=12, noise_px=0.0, seed=seed)
        c = OpCounter()
        poses = eight_point(c, prob.x1, prob.x2)
        assert poses
        assert rotation_angle_deg(poses[0][0], prob.r_true) < 0.1
        assert translation_direction_error_deg(poses[0][1], prob.t_true) < 0.5

    def test_eight_point_needs_eight(self):
        with pytest.raises(ValueError):
            eight_point_essential(OpCounter(), np.zeros((7, 2)), np.zeros((7, 2)))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_five_point_exact(self, seed):
        prob = make_relative_problem(n_points=10, noise_px=0.0, seed=seed)
        c = OpCounter()
        poses = five_point(c, prob.x1[:5], prob.x2[:5],
                           validate_with=(prob.x1, prob.x2))
        best = min((rotation_angle_deg(p[0], prob.r_true) for p in poses),
                   default=np.inf)
        assert best < 0.1

    def test_five_point_returns_multiple_candidates(self):
        """Up to 10 solutions, all of which must be validated (paper)."""
        prob = make_relative_problem(n_points=5, noise_px=0.0, seed=3)
        c = OpCounter()
        essentials = five_point_essentials(c, prob.x1, prob.x2)
        assert 1 <= len(essentials) <= 10

    def test_five_point_essentials_satisfy_constraints(self):
        prob = make_relative_problem(n_points=5, noise_px=0.0, seed=4)
        c = OpCounter()
        for e in five_point_essentials(c, prob.x1, prob.x2):
            assert abs(np.linalg.det(e)) < 1e-6
            trace_c = 2 * e @ e.T @ e - np.trace(e @ e.T) * e
            assert np.abs(trace_c).max() < 1e-6

    @pytest.mark.parametrize("seed", SEEDS)
    def test_relative_gold_standard(self, seed):
        prob = make_relative_problem(n_points=12, noise_px=0.3, seed=seed)
        c = OpCounter()
        poses = relative_gold_standard(c, prob.x1, prob.x2)
        assert poses
        assert rotation_angle_deg(poses[0][0], prob.r_true) < 2.0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_homography_dlt(self, seed):
        prob = make_homography_problem(n_points=10, noise_px=0.0, seed=seed)
        c = OpCounter()
        h = homography_dlt(c, prob.x1, prob.x2)
        assert h is not None
        assert np.allclose(h / h[2, 2], prob.h_true, atol=1e-6)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_homography_minimal_four_points(self, seed):
        prob = make_homography_problem(n_points=4, noise_px=0.0, seed=seed)
        c = OpCounter()
        h = homography_dlt(c, prob.x1, prob.x2)
        err = homography_transfer_error(c, h, prob.x1, prob.x2)
        assert err.max() < 1e-12

    def test_minimal_homography_cheaper_than_dlt(self):
        p4 = make_homography_problem(n_points=4, noise_px=0.0, seed=0)
        p10 = make_homography_problem(n_points=10, noise_px=0.0, seed=0)
        c4, c10 = OpCounter(), OpCounter()
        homography_dlt(c4, p4.x1, p4.x2)
        homography_dlt(c10, p10.x1, p10.x2)
        assert c4.trace.total < c10.trace.total / 3


class TestUprightSolvers:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_u3pt(self, seed):
        prob = make_relative_problem(n_points=8, noise_px=0.0, upright=True,
                                     seed=seed)
        c = OpCounter()
        poses = u3pt(c, prob.x1[:3], prob.x2[:3])
        best = min((rotation_angle_deg(p[0], prob.r_true) for p in poses),
                   default=np.inf)
        assert best < 0.1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_up2pt(self, seed):
        prob = make_relative_problem(n_points=8, noise_px=0.0, upright=True,
                                     planar=True, seed=seed)
        c = OpCounter()
        poses = up2pt(c, prob.x1[:2], prob.x2[:2])
        best = min((rotation_angle_deg(p[0], prob.r_true) for p in poses),
                   default=np.inf)
        assert best < 0.1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_up3pt(self, seed):
        prob = make_relative_problem(n_points=8, noise_px=0.0, upright=True,
                                     planar=True, seed=seed)
        c = OpCounter()
        poses = up3pt(c, prob.x1, prob.x2)
        assert poses
        assert rotation_angle_deg(poses[0][0], prob.r_true) < 0.1

    def test_up2pt_translation_planar(self):
        prob = make_relative_problem(n_points=4, noise_px=0.0, upright=True,
                                     planar=True, seed=1)
        c = OpCounter()
        for _, t in up2pt(c, prob.x1[:2], prob.x2[:2]):
            assert t[1] == pytest.approx(0.0, abs=1e-12)

    def test_upright_solvers_cheaper_than_5pt(self):
        """Case Study 4: structural priors slash solver cost."""
        prob_u = make_relative_problem(n_points=8, noise_px=0.0, upright=True, seed=0)
        prob_5 = make_relative_problem(n_points=8, noise_px=0.0, seed=0)
        c_u, c_5 = OpCounter(), OpCounter()
        u3pt(c_u, prob_u.x1[:3], prob_u.x2[:3])
        five_point(c_5, prob_5.x1[:5], prob_5.x2[:5])
        assert c_5.trace.total > 5 * c_u.trace.total

    def test_wrong_sample_sizes_rejected(self):
        with pytest.raises(ValueError):
            u3pt(OpCounter(), np.zeros((4, 2)), np.zeros((4, 2)))
        with pytest.raises(ValueError):
            up2pt(OpCounter(), np.zeros((3, 2)), np.zeros((3, 2)))
        with pytest.raises(ValueError):
            up3pt(OpCounter(), np.zeros((2, 2)), np.zeros((2, 2)))
