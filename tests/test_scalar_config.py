"""Tests for scalar-type parsing and the JSON harness config."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import DEFAULT_CONFIG, HarnessConfig
from repro.scalar import F32, F64, ScalarType, parse_scalar, q


class TestScalarType:
    def test_parse_floats(self):
        assert parse_scalar("f32") is not None
        assert parse_scalar("float").kind == "f32"
        assert parse_scalar("double").kind == "f64"

    def test_parse_q_format(self):
        s = parse_scalar("q7.24")
        assert s.is_fixed
        assert s.q_int == 7 and s.q_frac == 24

    def test_parse_passthrough(self):
        assert parse_scalar(F64) is F64

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_scalar("int8")

    def test_q_requires_31_bits(self):
        with pytest.raises(ValueError):
            q(7, 20)

    def test_names(self):
        assert F32.name == "f32"
        assert q(7, 24).name == "q7.24"

    def test_dtypes(self):
        import numpy as np

        assert F32.dtype == np.float32
        assert F64.dtype == np.float64

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ScalarType("bf16")

    @given(st.integers(min_value=1, max_value=30))
    def test_q_roundtrip_through_parse(self, int_bits):
        s = q(int_bits, 31 - int_bits)
        assert parse_scalar(s.name) == s


class TestHarnessConfig:
    def test_defaults_valid(self):
        DEFAULT_CONFIG.validated()

    def test_json_roundtrip(self):
        cfg = HarnessConfig(reps=5, warmup_reps=2, verbosity=1)
        again = HarnessConfig.from_json(cfg.to_json())
        assert again == cfg

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown config keys"):
            HarnessConfig.from_json('{"reps": 2, "bogus": 1}')

    def test_invalid_reps_rejected(self):
        with pytest.raises(ValueError):
            HarnessConfig(reps=0).validated()

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            HarnessConfig(warmup_reps=-1).validated()

    def test_with_cache_preserves_other_fields(self):
        cfg = HarnessConfig(reps=7, warmup_reps=3)
        off = cfg.with_cache(False)
        assert off.cache_enabled is False
        assert off.reps == 7 and off.warmup_reps == 3

    def test_save_load(self, tmp_path):
        cfg = HarnessConfig(reps=4)
        path = tmp_path / "cfg.json"
        cfg.save(path)
        assert HarnessConfig.load(path) == cfg
