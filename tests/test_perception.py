"""Tests for the perception kernels (FAST, BRIEF, ORB, SIFT, optical flow)."""

import numpy as np
import pytest

from repro.datasets import images
from repro.mcu.ops import OpCounter
from repro.perception import brief
from repro.perception.fast import BORDER, Corner, fast_detect
from repro.perception.flow import (
    block_matching_flow,
    image_interpolation_flow,
    lucas_kanade_flow,
)
from repro.perception.gaussian import (
    build_pyramid,
    gaussian_blur,
    gaussian_kernel,
    image_gradients,
)
from repro.perception.orb_kernel import (
    intensity_centroid_angle,
    orb_detect_and_describe,
)
from repro.perception.sift import (
    scale_space_footprint_bytes,
    sift_detect_and_describe,
)


def synthetic_corner_image(size=64, value=200):
    """A bright square on dark background: 4 strong corners."""
    img = np.full((size, size), 30, dtype=np.uint8)
    img[size // 4 : 3 * size // 4, size // 4 : 3 * size // 4] = value
    return img


class TestGaussian:
    def test_kernel_normalized(self):
        k = gaussian_kernel(1.5)
        assert k.sum() == pytest.approx(1.0)
        assert len(k) % 2 == 1

    def test_blur_preserves_mean(self):
        img = images.load("midd", shape=(40, 40)).astype(np.float64)
        out = gaussian_blur(OpCounter(), img, 1.0)
        assert out.mean() == pytest.approx(img.mean(), rel=0.02)

    def test_blur_reduces_variance(self):
        img = images.load("midd", shape=(40, 40)).astype(np.float64)
        out = gaussian_blur(OpCounter(), img, 2.0)
        assert out.var() < img.var()

    def test_pyramid_halves_resolution(self):
        img = images.load("midd", shape=(64, 64))
        pyr = build_pyramid(OpCounter(), img, levels=3)
        assert pyr[0].shape == (64, 64)
        assert pyr[1].shape == (32, 32)
        assert pyr[2].shape == (16, 16)

    def test_gradients_of_ramp(self):
        img = np.tile(np.arange(32, dtype=np.float64), (32, 1))
        gx, gy = image_gradients(OpCounter(), img)
        assert np.allclose(gx[1:-1, 1:-1], 1.0)
        assert np.allclose(gy[1:-1, 1:-1], 0.0)

    def test_blur_cost_scales_with_sigma(self):
        img = images.load("midd", shape=(40, 40)).astype(np.float64)
        c1, c2 = OpCounter(), OpCounter()
        gaussian_blur(c1, img, 0.8)
        gaussian_blur(c2, img, 3.0)
        assert c2.trace.total > c1.trace.total


class TestFast:
    def test_finds_square_corners(self):
        corners = fast_detect(OpCounter(), synthetic_corner_image())
        assert len(corners) >= 4
        found = {(c.y, c.x) for c in corners}
        for target in ((16, 16), (16, 47), (47, 16), (47, 47)):
            assert any(abs(t[0] - y) <= 2 and abs(t[1] - x) <= 2
                       for y, x in found for t in [target])

    def test_uniform_image_has_no_corners(self):
        img = np.full((64, 64), 100, dtype=np.uint8)
        assert fast_detect(OpCounter(), img) == []

    def test_corners_sorted_by_score(self):
        corners = fast_detect(OpCounter(), images.load("midd"))
        scores = [c.score for c in corners]
        assert scores == sorted(scores, reverse=True)

    def test_corners_respect_border(self):
        corners = fast_detect(OpCounter(), images.load("april"))
        h, w = images.FEATURE_IMAGE_SHAPE
        for c in corners:
            assert BORDER <= c.y < h - BORDER
            assert BORDER <= c.x < w - BORDER

    def test_dataset_cost_ordering(self):
        """Case Study 1: lights runs cheapest, april is the most expensive."""
        costs = {}
        for name in ("midd", "lights", "april"):
            c = OpCounter()
            fast_detect(c, images.load(name, seed=1))
            costs[name] = c.trace.total
        assert costs["lights"] < costs["midd"]
        assert costs["lights"] < costs["april"]

    def test_higher_threshold_fewer_corners(self):
        img = images.load("midd")
        low = fast_detect(OpCounter(), img, threshold=10)
        high = fast_detect(OpCounter(), img, threshold=40)
        assert len(high) < len(low)

    def test_nonmax_suppression_reduces_count(self):
        img = images.load("april")
        with_nms = fast_detect(OpCounter(), img, nonmax_suppression=True)
        without = fast_detect(OpCounter(), img, nonmax_suppression=False)
        assert len(with_nms) <= len(without)


class TestBrief:
    def test_descriptor_shape(self):
        img = images.load("midd")
        corners = fast_detect(OpCounter(), img)[:10]
        desc = brief.describe(OpCounter(), img, corners)
        assert desc.shape == (10, 32)
        assert desc.dtype == np.uint8

    def test_deterministic(self):
        img = images.load("midd")
        corners = fast_detect(OpCounter(), img)[:5]
        d1 = brief.describe(OpCounter(), img, corners)
        d2 = brief.describe(OpCounter(), img, corners)
        assert np.array_equal(d1, d2)

    def test_border_keypoints_skipped(self):
        img = images.load("midd")
        corners = [Corner(4, 4, 1.0)]
        desc = brief.describe(OpCounter(), img, corners)
        assert not desc.any()

    def test_hamming_distance(self):
        a = np.zeros(32, dtype=np.uint8)
        b = np.zeros(32, dtype=np.uint8)
        b[0] = 0b10000001
        assert brief.hamming_distance(OpCounter(), a, b) == 2
        assert brief.hamming_distance(OpCounter(), a, a) == 0

    def test_matching_same_image_is_identity(self):
        img = images.load("midd")
        corners = fast_detect(OpCounter(), img)[:8]
        desc = brief.describe(OpCounter(), img, corners)
        keep = desc.any(axis=1)
        matches = brief.match_descriptors(OpCounter(), desc[keep], desc[keep])
        assert all(i == j for i, j, _ in matches)

    def test_pattern_is_stable(self):
        assert np.array_equal(brief.brief_pattern(), brief.brief_pattern())


class TestOrb:
    def test_detect_and_describe(self):
        kps, desc = orb_detect_and_describe(OpCounter(), images.load("midd"))
        assert len(kps) > 10
        assert desc.shape == (len(kps), 32)

    def test_orientation_of_gradient_patch(self):
        # Intensity increasing along +x: centroid angle ~ 0.
        img = np.tile(np.linspace(0, 255, 64).astype(np.uint8), (64, 1))
        angle = intensity_centroid_angle(OpCounter(), img, Corner(32, 32, 1.0))
        assert abs(angle) < 0.2

    def test_costlier_than_fastbrief(self):
        """Case Study 1: orb is 1.5-2.5x fastbrief (the fastbrief pipeline
        includes its Gaussian pre-blur, as in the benchmark problem)."""
        img = images.load("midd", seed=1)
        c_fb, c_orb = OpCounter(), OpCounter()
        blurred = gaussian_blur(c_fb, img.astype(np.float64), 1.0)
        corners = fast_detect(c_fb, blurred.astype(np.uint8))
        brief.describe(c_fb, img, corners)
        orb_detect_and_describe(c_orb, img)
        ratio = c_orb.trace.total / c_fb.trace.total
        assert 1.2 < ratio < 3.5

    def test_empty_image(self):
        img = np.full((64, 64), 100, dtype=np.uint8)
        kps, desc = orb_detect_and_describe(OpCounter(), img)
        assert kps == []
        assert desc.shape == (0, 32)


class TestSift:
    def test_detect_and_describe(self):
        kps, desc = sift_detect_and_describe(OpCounter(), images.load("midd", seed=1))
        assert len(kps) >= 5
        assert desc.shape == (len(kps), 128)

    def test_descriptors_unit_norm(self):
        _, desc = sift_detect_and_describe(OpCounter(), images.load("midd", seed=1))
        norms = np.linalg.norm(desc, axis=1)
        assert np.allclose(norms, 1.0, atol=0.05)

    def test_far_more_expensive_than_orb(self):
        """SIFT is the suite's heavyweight (Table IV: ~100x orb)."""
        img = images.load("midd", seed=1)
        c_sift, c_orb = OpCounter(), OpCounter()
        sift_detect_and_describe(c_sift, img)
        orb_detect_and_describe(c_orb, img)
        assert c_sift.trace.total > 10 * c_orb.trace.total

    def test_footprint_exceeds_m4(self):
        from repro.mcu.arch import M4

        assert scale_space_footprint_bytes((160, 160)) > M4.memory.sram_bytes


class TestOpticalFlow:
    def test_lucas_kanade_recovers_shift(self):
        pair = images.flow_pair("midd", displacement=(1.5, -2.0), seed=2)
        flows = lucas_kanade_flow(OpCounter(), pair["frame0"], pair["frame1"])
        valid = np.array([(f.dy, f.dx) for f in flows if f.valid])
        med = np.median(valid, axis=0)
        assert med == pytest.approx([1.5, -2.0], abs=0.3)

    def test_iiof_recovers_small_shift(self):
        pair = images.flow_pair("midd", displacement=(0.8, -1.0), seed=3)
        est = image_interpolation_flow(OpCounter(), pair["frame0"], pair["frame1"])
        assert est.valid
        assert (est.dy, est.dx) == pytest.approx((0.8, -1.0), abs=0.6)

    def test_block_matching_recovers_integer_shift(self):
        pair = images.flow_pair("midd", displacement=(2.0, -3.0), seed=4)
        est = block_matching_flow(OpCounter(), pair["frame0"], pair["frame1"])
        assert (est.dy, est.dx) == pytest.approx((2.0, -3.0), abs=1.0)

    def test_vectorized_bbof_same_answer_fewer_ops(self):
        """Case Study 1: USADA8 packing ~4x cheaper, same result."""
        pair = images.flow_pair("midd", seed=5)
        c_s, c_v = OpCounter(), OpCounter()
        scalar = block_matching_flow(c_s, pair["frame0"], pair["frame1"])
        vector = block_matching_flow(c_v, pair["frame0"], pair["frame1"],
                                     vectorized=True)
        assert (scalar.dy, scalar.dx) == (vector.dy, vector.dx)
        ratio = c_s.trace.total / c_v.trace.total
        assert 2.5 < ratio < 6.5

    def test_lk_costliest_flow_kernel(self):
        """Fig. 3(b): LK is an order of magnitude above block matching."""
        pair = images.flow_pair("midd", seed=6)
        c_lk, c_bb = OpCounter(), OpCounter()
        lucas_kanade_flow(c_lk, pair["frame0"], pair["frame1"])
        block_matching_flow(c_bb, pair["frame0"], pair["frame1"])
        assert c_lk.trace.total > 5 * c_bb.trace.total

    def test_lk_zero_motion(self):
        frame = images.load("midd", shape=(80, 80))
        flows = lucas_kanade_flow(OpCounter(), frame, frame)
        valid = np.array([(f.dy, f.dx) for f in flows if f.valid])
        assert np.abs(valid).max() < 0.05
