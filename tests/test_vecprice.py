"""Tests for ``repro.vecprice``: the columnar batch pricing path.

The one guarantee everything else hangs off is **byte-identity**: for
any (profile, arch, cache) cell, ``price_batch`` must produce results
indistinguishable from the serial ``engine.price_profile`` reference —
same floats bit for bit, same traces, same skip results — across every
registered backend, scalar type, cache state, and fault-derated
variant.  The remaining tests cover the lowering layer (trace matrices,
``ArchTables``), the facade verb's argument normalization, and the
engine/scenario wiring of the ``vectorize`` switch.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.backends import arch_names, backend_for, get_arch
from repro.engine import EngineOptions, TraceCache, run_sweep_engine
from repro.engine.profile import price_profile, solve_profile
from repro.mcu.cache import CACHE_OFF, CACHE_ON
from repro.mcu.ops import ALL_KINDS, OpTrace
from repro.scalar import parse_scalar
from repro.vecprice import (
    lower_profile,
    price_batch,
    pricing_tables,
    trace_matrix,
)

#: Kernels spanning the pricing-relevant axes: float-heavy (mahony),
#: branch/int-heavy (p3p), memory-heavy with misfits on small cores
#: (fastbrief), and the quantized TinyML path (proximity-net-int8).
KERNELS = ["mahony", "p3p", "fastbrief", "proximity-net-int8"]

#: Every registered core, plus a fault-derated variant whose cpi_scale /
#: clock / power figures must flow through the vectorized tables.
def _all_archs():
    archs = [get_arch(name) for name in arch_names()]
    archs.append(get_arch("m33").derated(name="m33+brownout:0.5", cpi_scale=2.0))
    archs.append(get_arch("rv32imc").derated(
        name="rv32imc+dvfs:0.4", clock_scale=0.4,
    ))
    return archs


@pytest.fixture(scope="module")
def profiles():
    """One solved profile per test kernel (solved once for the module)."""
    return {k: solve_profile(k, {}, 2, 0) for k in KERNELS}


def _as_jsonable(result):
    """A fully serialized form: catches numpy scalars leaking into results."""
    return json.dumps(dataclasses.asdict(result), sort_keys=True)


# ------------------------------------------------------- byte-identity


def test_batch_is_byte_identical_across_backends_scalars_and_caches(profiles):
    # The whole grid in ONE batch call: every kernel x core x cache
    # state, both ISAs, quantized and float scalars, derated variants.
    items = [
        (profile, arch, cache)
        for profile in profiles.values()
        for arch in _all_archs()
        for cache in (CACHE_ON, CACHE_OFF)
    ]
    serial = [price_profile(p, a, c) for p, a, c in items]
    batched = price_batch(items)
    assert len(batched) == len(serial)
    for s, b in zip(serial, batched):
        assert _as_jsonable(s) == _as_jsonable(b)
        assert s.runs == b.runs  # RunRecord equality incl. traces


@pytest.mark.parametrize("arch_name", ["m0plus", "rv32ec"])
def test_misfit_cells_produce_identical_skip_results(profiles, arch_name):
    profile = profiles["fastbrief"]
    arch = get_arch(arch_name)
    serial = price_profile(profile, arch, CACHE_ON)
    assert not serial.fits  # fixture sanity: this pair must misfit
    (batched,) = price_batch([(profile, arch, CACHE_ON)])
    assert _as_jsonable(serial) == _as_jsonable(batched)
    assert batched.skip_reason == serial.skip_reason


def test_mixed_fit_and_misfit_batch_preserves_item_order(profiles):
    items = [
        (profiles["fastbrief"], get_arch("m0plus"), CACHE_ON),   # misfit
        (profiles["mahony"], get_arch("m4"), CACHE_OFF),
        (profiles["fastbrief"], get_arch("rv32ec"), CACHE_OFF),  # misfit
        (profiles["mahony"], get_arch("m4"), CACHE_ON),
    ]
    batched = price_batch(items)
    assert [r.fits for r in batched] == [False, True, False, True]
    for (p, a, c), b in zip(items, batched):
        assert _as_jsonable(price_profile(p, a, c)) == _as_jsonable(b)


def test_derated_arch_prices_through_its_own_tables(profiles):
    base = get_arch("m33")
    derated = base.derated(name="m33+brownout:0.5", cpi_scale=2.0)
    (nominal,) = price_batch([(profiles["mahony"], base, CACHE_ON)])
    (slow,) = price_batch([(profiles["mahony"], derated, CACHE_ON)])
    assert slow.runs[0].cycles > nominal.runs[0].cycles
    assert _as_jsonable(slow) == _as_jsonable(
        price_profile(profiles["mahony"], derated, CACHE_ON)
    )


def test_results_contain_no_numpy_scalars(profiles):
    (result,) = price_batch([(profiles["proximity-net-int8"], get_arch("m4"), CACHE_ON)])
    run = result.runs[0]
    assert type(run.cycles) is float and type(run.latency_s) is float
    assert type(run.energy_j) is float and type(run.avg_power_w) is float
    assert all(type(getattr(run.trace, k)) is int for k in ALL_KINDS)


def test_fast_records_stay_frozen(profiles):
    (result,) = price_batch([(profiles["mahony"], get_arch("m4"), CACHE_ON)])
    with pytest.raises(dataclasses.FrozenInstanceError):
        result.runs[0].cycles = 0.0


# ---------------------------------------------------------- lowering


def test_trace_matrix_columns_follow_all_kinds_order(profiles):
    traces = [t for t, _ in profiles["p3p"].measured]
    matrix = trace_matrix(traces)
    assert matrix.shape == (len(traces), len(ALL_KINDS))
    assert matrix.dtype == np.int64
    for row, trace in zip(matrix, traces):
        assert [int(v) for v in row] == [getattr(trace, k) for k in ALL_KINDS]
    # Positional reconstruction (what batch assembly relies on).
    assert [OpTrace(*r) for r in matrix.tolist()] == traces


def test_lower_profile_category_sums_are_exact(profiles):
    profile = profiles["mahony"]
    pm = lower_profile(profile)
    for i, (trace, valid) in enumerate(profile.measured):
        assert int(pm.totals[i]) == trace.total
        assert int(pm.n_float[i]) == trace.n_float
        assert int(pm.n_mem[i]) == trace.n_mem
        assert pm.valids[i] == valid


def test_pricing_tables_memoizes_and_matches_backend_tables():
    import repro.vecprice as vp

    vp.clear_caches()
    arch = get_arch("rv32imafc")
    scalar = parse_scalar("f32")
    tables = pricing_tables(arch, scalar)
    assert pricing_tables(arch, scalar) is tables  # memo hit
    backend = backend_for(arch)
    f = backend.float_cpi(arch, scalar)
    c = backend.int_costs(arch)
    b = backend.branch_costs(arch)
    expected = [float(f[k]) for k in ALL_KINDS[:8]]
    expected += [c.ialu, c.imul, c.idiv, c.icmp, c.simd, c.load, c.store]
    expected += [b.taken, b.refill, c.call]
    assert tables.cpi.tolist() == [float(v) for v in expected]
    assert tables.cpi_scale == arch.cpi_scale
    assert tables.clock_hz == arch.clock_hz
    vp.clear_caches()
    assert pricing_tables(arch, scalar) is not tables


# --------------------------------------------------- facade + wiring


def test_api_price_batch_normalizes_names_labels_and_flags(profiles):
    import repro.api as api

    profile = profiles["mahony"]
    reference = price_profile(profile, get_arch("rv32imafc"), CACHE_OFF)
    for arch in ("rv32imafc", get_arch("rv32imafc")):
        for cache in ("NC", CACHE_OFF, False):
            for vectorize in (True, False):
                (got,) = api.price_batch(
                    [(profile, arch, cache)], vectorize=vectorize
                )
                assert _as_jsonable(got) == _as_jsonable(reference)
    with pytest.raises(ValueError, match="cache label"):
        api.price_batch([(profile, "m4", "CC")])
    with pytest.raises(KeyError):
        api.price_batch([(profile, "m44", "C")])


def test_trace_cache_profiles_snapshot_feeds_price_batch(profiles):
    import repro.api as api
    from repro.core.experiment import SweepSpec

    cache = TraceCache()
    run_sweep_engine(
        SweepSpec(kernels=["mahony"], archs=[get_arch("m4")]),
        options=EngineOptions(trace_cache=cache),
    )
    snapshot = cache.profiles()
    assert len(snapshot) == 1
    (profile,) = snapshot.values()
    (result,) = api.price_batch([(profile, "m7", "C")])
    assert _as_jsonable(result) == _as_jsonable(
        price_profile(profile, get_arch("m7"), CACHE_ON)
    )
    # The snapshot is a copy: mutating it never corrupts the cache.
    snapshot.clear()
    assert len(cache.profiles()) == 1


def test_engine_vectorized_and_serial_sweeps_are_identical():
    from repro.core.experiment import SweepSpec

    def run(vectorize):
        return run_sweep_engine(
            SweepSpec(
                kernels=["mahony", "fastbrief"],
                archs=[get_arch(n) for n in ("m0plus", "m4", "rv32imafc")],
            ),
            options=EngineOptions(use_cache=False, vectorize=vectorize),
        )

    fast, slow = run(True), run(False)
    assert len(fast.results) == len(slow.results)
    for f, s in zip(fast.results, slow.results):
        assert _as_jsonable(f) == _as_jsonable(s)


def test_scenario_campaigns_are_identical_either_price_path():
    from repro.scenarios import generate_scenarios, run_scenarios

    sset = generate_scenarios(tier="b", count=3, seed=11)
    fast = run_scenarios(sset, vectorize=True)
    slow = run_scenarios(sset, vectorize=False)
    assert fast == slow
