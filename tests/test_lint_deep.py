"""Tests for the deep (flow-sensitive, whole-program) analysis layer.

Covers the three deep engines — determinism taint propagation,
shared-state race detection, and API-contract checking — against the
committed fixture packages under ``tests/fixtures/lint/`` (one seeded
violation per rule, each with a clean twin), plus the incremental
cache (changed modules + reverse-import cone re-analyze), the
``--jobs`` determinism guarantee, SARIF rendering, and the
reason-required pragma policy for whole-program suppressions.
"""

import json
import textwrap
from pathlib import Path

from repro.lint import (
    AnalysisCache,
    Baseline,
    render_sarif,
    run_lint,
    rule_ids,
    select_rules,
)

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "fixtures" / "lint"

DEEP_RULES = {
    "taint-determinism", "worker-shared-state",
    "pool-pickle-safety", "api-contract",
}


def make_tree(tmp_path, files):
    """Write a synthetic ``repro`` package tree and return its root."""
    root = tmp_path / "repro"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


def fixture_findings(case, rule):
    """Lint one committed fixture package with a single deep rule."""
    result = run_lint(root=FIXTURES / case / "repro", rules=[rule],
                      use_baseline=False)
    return result.findings


# ------------------------------------------------------------ rule selection


def test_deep_rules_are_registered():
    assert DEEP_RULES <= set(rule_ids())


def test_basic_mode_excludes_deep_rules():
    basic = {r.id for r in select_rules(None, analyze="basic")}
    deep = {r.id for r in select_rules(None, analyze="deep")}
    assert basic & DEEP_RULES == set()
    assert DEEP_RULES <= deep
    assert basic <= deep


def test_explicit_rule_list_overrides_the_mode():
    picked = {r.id for r in select_rules(["taint-determinism"],
                                         analyze="basic")}
    assert picked == {"taint-determinism"}


# -------------------------------------------------------- taint-determinism


def test_transitive_wall_clock_taint_fires_exactly_once():
    findings = fixture_findings("taint", "taint-determinism")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.path == "repro/core/bad_report.py"
    assert "time.time" in finding.message
    assert "json.dumps" in finding.message
    # The reported flow crosses both intermediate hops.
    assert "repro.core.mid.helper" in finding.message
    assert "repro.core.clock.stamp" in finding.message


def test_taint_clean_twin_stays_clean():
    findings = fixture_findings("taint", "taint-determinism")
    assert all(f.path != "repro/core/good_report.py" for f in findings)


def test_taint_through_pricing_sink(tmp_path):
    root = make_tree(tmp_path, {
        "core/seedgen.py": """
            import os

            def pick_seed():
                return int(os.environ.get("SEED", "0"))
        """,
        "core/study.py": """
            from repro.core.seedgen import pick_seed

            def run(pricer):
                return pricer.price(pick_seed())
        """,
    })
    result = run_lint(root=root, rules=["taint-determinism"],
                      use_baseline=False)
    assert len(result.findings) == 1
    assert result.findings[0].path == "repro/core/study.py"
    assert "pricing" in result.findings[0].message


# ------------------------------------------------------- worker-shared-state


def test_worker_side_global_mutation_fires_exactly_once():
    findings = fixture_findings("races", "worker-shared-state")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.path == "repro/engine/bad_pool.py"
    assert "_RESULTS" in finding.message
    assert "process-pool" in finding.message


def test_races_clean_twin_stays_clean():
    findings = fixture_findings("races", "worker-shared-state")
    assert all(f.path != "repro/engine/good_pool.py" for f in findings)


def test_thread_domain_global_write_flagged(tmp_path):
    root = make_tree(tmp_path, {
        "service/hub.py": """
            import threading

            _SEEN = []

            def _drain(q):
                _SEEN.append(q)

            def start(q):
                t = threading.Thread(target=_drain, args=(q,))
                t.start()
                return t
        """,
    })
    result = run_lint(root=root, rules=["worker-shared-state"],
                      use_baseline=False)
    assert len(result.findings) == 1
    assert "_SEEN" in result.findings[0].message


# -------------------------------------------------------- pool-pickle-safety


def test_unpicklable_mapped_callable_fires_exactly_once():
    findings = fixture_findings("pickle", "pool-pickle-safety")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.path == "repro/engine/bad_submit.py"
    assert "pickled" in finding.message


def test_pickle_clean_twin_stays_clean():
    findings = fixture_findings("pickle", "pool-pickle-safety")
    assert all(f.path != "repro/engine/good_submit.py" for f in findings)


# -------------------------------------------------------------- api-contract


def test_all_drift_fires_exactly_once():
    findings = fixture_findings("contracts", "api-contract")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.path == "repro/core/bad_api.py"
    assert "ghost" in finding.message


def test_contract_clean_twin_stays_clean():
    findings = fixture_findings("contracts", "api-contract")
    assert all(f.path != "repro/core/good_api.py" for f in findings)


# ------------------------------------------------------ parallel determinism


def test_findings_identical_across_jobs(tmp_path):
    """The headline guarantee: --jobs N is byte-identical to --jobs 1."""
    for case in ("taint", "races", "pickle", "contracts"):
        root = FIXTURES / case / "repro"
        serial = run_lint(root=root, analyze="deep", jobs=1,
                          use_baseline=False)
        parallel = run_lint(root=root, analyze="deep", jobs=2,
                            use_baseline=False)
        key = lambda r: [f.to_dict() for f in r.all_findings]
        assert key(serial) == key(parallel), case
        assert serial.suppressed == parallel.suppressed, case


# ------------------------------------------------------------ incremental


INCREMENTAL_TREE = {
    "core/base.py": """
        \"\"\"Fixture: carries the finding.\"\"\"

        def f(x=[]):
            return x
    """,
    "core/user.py": """
        \"\"\"Fixture: imports base, sits in its reverse cone.\"\"\"

        from repro.core.base import f

        def g(v):
            return f(v)
    """,
    "core/other.py": """
        \"\"\"Fixture: unrelated module outside the cone.\"\"\"

        def h():
            return 3
    """,
}


def test_incremental_reanalyzes_only_the_changed_cone(tmp_path):
    root = make_tree(tmp_path, INCREMENTAL_TREE)
    cache = tmp_path / "cache.json"
    kwargs = dict(root=root, rules=["mutable-default-args"],
                  use_baseline=False, cache_path=cache)

    first = run_lint(**kwargs)
    assert sorted(first.analyzed) == [
        "repro/core/base.py", "repro/core/other.py", "repro/core/user.py",
    ]
    assert first.reused == []
    assert len(first.findings) == 1

    # No edits: everything is served from cache, findings identical.
    warm = run_lint(**kwargs)
    assert warm.analyzed == []
    assert sorted(warm.reused) == sorted(first.analyzed)
    assert [f.to_dict() for f in warm.findings] == \
        [f.to_dict() for f in first.findings]

    # Edit base.py: base and its reverse importer re-analyze; other.py
    # is served from cache.
    (root / "core" / "base.py").write_text(textwrap.dedent("""
        \"\"\"Fixture: edited; still carries the finding.\"\"\"

        def f(y=[]):
            return y
    """))
    third = run_lint(**kwargs)
    assert sorted(third.analyzed) == [
        "repro/core/base.py", "repro/core/user.py",
    ]
    assert third.reused == ["repro/core/other.py"]
    assert len(third.findings) == 1


def test_module_set_change_invalidates_the_whole_cache(tmp_path):
    root = make_tree(tmp_path, INCREMENTAL_TREE)
    cache = tmp_path / "cache.json"
    kwargs = dict(root=root, rules=["mutable-default-args"],
                  use_baseline=False, cache_path=cache)
    run_lint(**kwargs)
    (root / "core" / "new.py").write_text('"""New module."""\n')
    result = run_lint(**kwargs)
    assert len(result.analyzed) == 4
    assert result.reused == []


def test_rules_signature_mismatch_degrades_to_cold_cache(tmp_path):
    root = make_tree(tmp_path, INCREMENTAL_TREE)
    cache = tmp_path / "cache.json"
    run_lint(root=root, rules=["mutable-default-args"], use_baseline=False,
             cache_path=cache)
    # A different rule set writes a different signature: the cached
    # entries must not leak across analysis configurations.
    result = run_lint(root=root, rules=["iteration-order"],
                      use_baseline=False, cache_path=cache)
    assert result.reused == []
    assert len(result.analyzed) == 3


def test_cache_file_is_deterministic(tmp_path):
    root = make_tree(tmp_path, INCREMENTAL_TREE)
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    run_lint(root=root, rules=["mutable-default-args"], use_baseline=False,
             cache_path=a)
    run_lint(root=root, rules=["mutable-default-args"], use_baseline=False,
             cache_path=b)
    assert a.read_text() == b.read_text()


# --------------------------------------------------------------- suppression


def test_deep_suppression_requires_a_reason(tmp_path):
    root = make_tree(tmp_path, {
        "core/bad_api.py": """
            \"\"\"Fixture.\"\"\"

            # repro: lint-ignore[api-contract]
            __all__ = ["ghost"]
        """,
    })
    result = run_lint(root=root, rules=["api-contract", "pragma-hygiene"],
                      use_baseline=False)
    assert len(result.findings) == 1
    assert result.findings[0].rule == "pragma-hygiene"
    assert "requires a documented reason" in result.findings[0].message


def test_deep_suppression_with_reason_is_honored(tmp_path):
    root = make_tree(tmp_path, {
        "core/bad_api.py": """
            \"\"\"Fixture.\"\"\"

            # repro: lint-ignore[api-contract] -- name is injected by the plugin loader at import time
            __all__ = ["ghost"]
        """,
    })
    result = run_lint(root=root, rules=["api-contract", "pragma-hygiene"],
                      use_baseline=False)
    assert result.findings == []
    assert result.suppressed == 1


# --------------------------------------------------------------------- SARIF


def test_sarif_report_shape():
    result = run_lint(root=FIXTURES / "taint" / "repro",
                      rules=["taint-determinism"], use_baseline=False)
    doc = json.loads(render_sarif(result))
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert rules == {"taint-determinism"}
    (res,) = run["results"]
    assert res["ruleId"] == "taint-determinism"
    uri = res["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
    assert uri == "src/repro/core/bad_report.py"
    assert "reproLintFingerprint/v2" in res["partialFingerprints"]


def test_sarif_clean_run_has_no_results():
    result = run_lint(root=FIXTURES / "contracts" / "repro",
                      rules=["pool-pickle-safety"], use_baseline=False)
    doc = json.loads(render_sarif(result))
    assert doc["runs"][0]["results"] == []


# ------------------------------------------------------- baseline (deep mode)


def test_deep_findings_baseline_and_prune(tmp_path):
    root = FIXTURES / "races" / "repro"
    baseline_path = tmp_path / "baseline.json"
    first = run_lint(root=root, rules=["worker-shared-state"],
                     use_baseline=False)
    assert len(first.all_findings) == 1
    Baseline.from_findings(first.all_findings).save(baseline_path)

    absorbed = run_lint(root=root, rules=["worker-shared-state"],
                        baseline_path=baseline_path)
    assert absorbed.clean
    assert absorbed.baselined == 1

    # Pruning against a clean rule drops the now-stale entry.
    clean = run_lint(root=root, rules=["pool-pickle-safety"],
                     use_baseline=False)
    baseline = Baseline.load(baseline_path)
    pruned, dropped = baseline.prune(clean.all_findings)
    assert len(dropped) == 1
    assert pruned.counts == {}


# ------------------------------------------------------------ the real repo


def test_repo_is_deep_clean():
    """`repro lint --analyze deep` passes on the full tree."""
    result = run_lint(analyze="deep")
    assert result.clean, "\n".join(
        f"{f.path}:{f.line}: [{f.rule}] {f.message}" for f in result.findings
    )


# ---------------------------------------------------------------------- CLI


def test_cli_deep_flags(capsys):
    from repro.cli import main
    root = FIXTURES / "contracts" / "repro"
    args = ["lint", "--root", str(root), "--rules", "api-contract",
            "--analyze", "deep", "--jobs", "2"]
    assert main(args) == 1
    assert "api-contract" in capsys.readouterr().out


def test_cli_sarif_output(capsys):
    from repro.cli import main
    root = FIXTURES / "pickle" / "repro"
    args = ["lint", "--root", str(root), "--rules", "pool-pickle-safety",
            "--format", "sarif"]
    assert main(args) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["runs"][0]["results"]


def test_cli_prune_baseline(tmp_path, capsys):
    from repro.cli import main
    root = make_tree(tmp_path, {
        "core/x.py": """
            def f(x=[]):
                return x
        """,
    })
    baseline = tmp_path / "baseline.json"
    args = ["lint", "--root", str(root), "--baseline", str(baseline),
            "--rules", "mutable-default-args"]
    assert main(args + ["--update-baseline"]) == 0
    capsys.readouterr()

    # Fix the violation; prune must empty the baseline.
    (root / "core" / "x.py").write_text('"""Clean now."""\n')
    assert main(args + ["--prune-baseline"]) == 0
    assert "1 stale entry pruned" in capsys.readouterr().out
    assert json.loads(baseline.read_text())["findings"] == {}


def test_cli_incremental_cache(tmp_path, capsys):
    from repro.cli import main
    root = make_tree(tmp_path, INCREMENTAL_TREE)
    cache = tmp_path / "cache.json"
    args = ["lint", "--root", str(root), "--rules", "iteration-order",
            "--cache", str(cache)]
    assert main(args) == 0
    capsys.readouterr()
    assert main(args) == 0
    assert "3 served from cache" in capsys.readouterr().out
    payload = json.loads(cache.read_text())
    assert payload["version"] == 1
    assert len(payload["modules"]) == 3
