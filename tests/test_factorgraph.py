"""Tests for the AXLE chain-factor-graph smoothing kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.factorgraph.axle import (
    ChainFactorGraph,
    relative_pose,
    smooth,
    solve_dense_for_reference,
    wrap_angle,
    _assemble,
    _solve_block_tridiagonal,
)
from repro.factorgraph.suite import AxleSmoothingProblem, make_smoothing_problem
from repro.mcu.ops import OpCounter


class TestPoseAlgebra:
    @given(st.floats(-10, 10))
    @settings(max_examples=40)
    def test_wrap_angle_range(self, a):
        w = wrap_angle(a)
        assert -np.pi < w <= np.pi

    def test_relative_pose_identity(self):
        p = np.array([1.0, 2.0, 0.5])
        assert relative_pose(p, p) == pytest.approx([0.0, 0.0, 0.0])

    def test_relative_pose_composition(self):
        a = np.array([0.0, 0.0, np.pi / 2])
        b = np.array([0.0, 1.0, np.pi / 2])
        rel = relative_pose(a, b)
        # Moving 1 along world +y while facing +y is 1 along local +x.
        assert rel == pytest.approx([1.0, 0.0, 0.0], abs=1e-12)


class TestGraphConstruction:
    def test_out_of_range_factors_rejected(self):
        g = ChainFactorGraph(5)
        with pytest.raises(ValueError):
            g.add_odometry(4, np.zeros(3))  # connects 4->5, out of range
        with pytest.raises(ValueError):
            g.add_prior(5, np.zeros(3))

    def test_factors_stored(self):
        g = ChainFactorGraph(4)
        g.add_odometry(0, np.array([0.1, 0.0, 0.0]))
        g.add_prior(0, np.zeros(3))
        assert len(g.odometry) == 1
        assert len(g.priors) == 1


class TestSolver:
    def test_block_tridiagonal_matches_dense(self):
        graph, initial, _ = make_smoothing_problem(n_poses=12, seed=3)
        c = OpCounter()
        diag, off, rhs = _assemble(c, graph, initial)
        thomas = _solve_block_tridiagonal(c, diag, off, rhs)
        dense = solve_dense_for_reference(c, graph, initial)
        assert np.allclose(thomas, dense, atol=1e-8)

    def test_thomas_far_cheaper_than_dense(self):
        """AXLE's point: the chain structure keeps the solve O(N)."""
        graph, initial, _ = make_smoothing_problem(n_poses=40, seed=0)
        c_dense, c_thomas = OpCounter(), OpCounter()
        solve_dense_for_reference(c_dense, graph, initial)
        diag, off, rhs = _assemble(c_thomas, graph, initial)
        _solve_block_tridiagonal(c_thomas, diag, off, rhs)
        assert c_dense.trace.total > 20 * c_thomas.trace.total

    def test_thomas_cost_linear_in_length(self):
        costs = []
        for n in (20, 40, 80):
            graph, initial, _ = make_smoothing_problem(n_poses=n, seed=0)
            c = OpCounter()
            diag, off, rhs = _assemble(c, graph, initial)
            base = c.trace.total
            _solve_block_tridiagonal(c, diag, off, rhs)
            costs.append(c.trace.total - base)
        # Doubling N roughly doubles (not quadruples+) the solve cost.
        assert costs[1] / costs[0] < 3.0
        assert costs[2] / costs[1] < 3.0


class TestSmoothing:
    def test_reduces_trajectory_error(self):
        graph, initial, truth = make_smoothing_problem(n_poses=40, seed=1)
        result = smooth(OpCounter(), graph, initial)
        before = np.sqrt(np.mean((initial[:, :2] - truth[:, :2]) ** 2))
        after = np.sqrt(np.mean((result.poses[:, :2] - truth[:, :2]) ** 2))
        assert result.converged
        assert after < 0.4 * before

    def test_cost_decreases(self):
        graph, initial, _ = make_smoothing_problem(n_poses=30, seed=2)
        result = smooth(OpCounter(), graph, initial)
        assert result.final_cost < result.initial_cost

    def test_anchored_start_stays_put(self):
        graph, initial, truth = make_smoothing_problem(n_poses=20, seed=4)
        result = smooth(OpCounter(), graph, initial)
        assert np.linalg.norm(result.poses[0, :2] - truth[0, :2]) < 0.02

    def test_bad_initial_shape_rejected(self):
        graph, _, _ = make_smoothing_problem(n_poses=10)
        with pytest.raises(ValueError):
            smooth(OpCounter(), graph, np.zeros((5, 3)))

    @pytest.mark.parametrize("seed", range(4))
    def test_problem_validates(self, seed):
        p = AxleSmoothingProblem(seed=seed)
        p.ensure_setup()
        result = p.solve(OpCounter())
        assert p.validate(result)

    def test_registered_in_suite(self):
        from repro.core import registry

        assert registry.is_registered("axle-smooth")
        p = registry.create("axle-smooth", n_poses=25)
        p.ensure_setup()
        assert p.graph.n_poses == 25
