"""Tests for the fault-injection subsystem (repro.faults).

The load-bearing guarantees:

* with every injector disabled (severity 0 / no hook) the touched code
  paths are **bit-identical** to the fault-free originals;
* campaigns are deterministic: same seed → byte-identical resilience
  reports, across runs and across worker counts;
* degradation is physically sensible: monotone latency/energy inflation
  with severity, monotone mission completion under brownout.
"""

import json

import numpy as np
import pytest

from repro.closedloop import FlappingWingRunner, HoverMission
from repro.core.config import HarnessConfig
from repro.core.experiment import SweepSpec, run_sweep_serial
from repro.datasets import imu
from repro.engine import Telemetry, run_sweep_engine
from repro.faults import (
    FaultCampaignSpec,
    build_report,
    corrupt_sequence,
    corrupt_trace,
    fault_names,
    get_fault,
    make_edge_filter,
    render_report,
    run_campaign,
    save_report,
)
from repro.faults.campaign import _mission_worker, plan_mission_cells
from repro.faults.power import battery_voltage_frac
from repro.instrumentation.gpio import GpioBus
from repro.instrumentation.logic_analyzer import LogicAnalyzer
from repro.instrumentation.power_monitor import CurrentTrace, PowerMonitor
from repro.mcu.arch import M33, get_arch
from repro.mcu.cache import CACHE_ON


class TestRegistry:
    def test_known_faults_registered(self):
        names = fault_names()
        for expected in ("brownout", "battery", "dvfs", "cpi-storm",
                         "overrun-storm", "imu-dropout", "probe-noise"):
            assert expected in names

    def test_unknown_fault_lists_available(self):
        with pytest.raises(KeyError, match="brownout"):
            get_fault("does-not-exist")

    def test_severity_validation(self):
        with pytest.raises(ValueError):
            get_fault("brownout").derate_arch(M33, 1.5)


class TestArchDerating:
    def test_severity_zero_returns_base_arch_object(self):
        # Identity, not equality: the engine keys cells by arch name, and
        # the no-fault path must be indistinguishable from no fault at all.
        for name in ("brownout", "battery", "dvfs", "cpi-storm"):
            assert get_fault(name).derate_arch(M33, 0.0) is M33

    def test_brownout_throttling_monotone_in_severity(self):
        fault = get_fault("brownout")
        clocks = [fault.derate_arch(M33, s).clock_hz
                  for s in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert all(a >= b for a, b in zip(clocks, clocks[1:]))
        assert clocks[-1] < clocks[0]  # deep sag really throttles

    def test_brownout_raises_power_floor_and_shrinks_budget(self):
        fault = get_fault("brownout")
        idle = [fault.derate_arch(M33, s).power.idle_mw for s in (0.0, 0.5, 1.0)]
        budgets = [fault.peak_budget_w(M33, s) for s in (0.0, 0.5, 1.0)]
        assert idle[0] < idle[1] < idle[2]
        assert budgets[0] > budgets[1] > budgets[2]

    def test_cpi_storm_inflates_cycles_not_power(self):
        fault = get_fault("cpi-storm")
        derated = fault.derate_arch(M33, 0.5)
        assert derated.cpi_scale > 1.0
        assert derated.power == M33.power
        assert derated.clock_hz == M33.clock_hz

    def test_battery_curve_monotone_with_knee(self):
        depths = np.linspace(0.0, 1.0, 21)
        volts = [battery_voltage_frac(d) for d in depths]
        assert all(a >= b for a, b in zip(volts, volts[1:]))
        # The knee: the last 20 % of discharge loses more voltage than the
        # first 80 % combined.
        assert (volts[16] - volts[20]) > (volts[0] - volts[16])


class TestNoFaultBitIdentity:
    def test_severity_zero_sweep_matches_serial_driver(self):
        spec = SweepSpec(
            kernels=["mahony"],
            archs=[get_fault("brownout").derate_arch(M33, 0.0)],
            caches=(CACHE_ON,),
            config=HarnessConfig(reps=1, warmup_reps=0),
        )
        engine = run_sweep_engine(spec)
        serial = run_sweep_serial(SweepSpec(
            kernels=["mahony"], archs=[M33], caches=(CACHE_ON,),
            config=HarnessConfig(reps=1, warmup_reps=0),
        ))
        a = engine.get("mahony", "m33")
        b = serial.get("mahony", "m33")
        for run_a, run_b in zip(a.runs, b.runs):
            assert run_a.cycles == run_b.cycles
            assert run_a.latency_s == run_b.latency_s
            assert run_a.energy_j == run_b.energy_j
            assert run_a.peak_power_w == run_b.peak_power_w

    def test_runner_without_hook_bit_identical(self):
        base = FlappingWingRunner(arch=M33).run(HoverMission())
        hooked = FlappingWingRunner(arch=M33, fault_hook=None).run(HoverMission())
        assert base.path_error_rms_m == hooked.path_error_rms_m
        assert base.compute_energy_j == hooked.compute_energy_j
        assert base.effective_rate_hz == hooked.effective_rate_hz

    def test_severity_zero_mission_cell_matches_plain_runner(self):
        record = _mission_worker(("brownout", "hover", "m33", 0.0, 99))
        plain = FlappingWingRunner(arch=M33).run(HoverMission())
        assert record["path_error_rms"] == plain.path_error_rms_m
        assert record["compute_energy_j"] == plain.compute_energy_j
        assert record["fault_events"] == 0


class TestSensorFaults:
    def test_corrupt_sequence_deterministic_per_seed(self):
        seq = imu.load("bee-hover", n=120, seed=0)
        a = corrupt_sequence(seq, "dropout", 0.6, seed=7)
        b = corrupt_sequence(seq, "dropout", 0.6, seed=7)
        c = corrupt_sequence(seq, "dropout", 0.6, seed=8)
        np.testing.assert_array_equal(a.gyro, b.gyro)
        assert not np.array_equal(a.gyro, c.gyro)

    def test_dropout_count_monotone_in_severity(self):
        seq = imu.load("bee-hover", n=200, seed=0)
        held = []
        for severity in (0.2, 0.5, 0.9):
            out = corrupt_sequence(seq, "dropout", severity, seed=3)
            held.append(int((out.gyro[1:] == out.gyro[:-1]).all(axis=1).sum()))
        assert held[0] < held[1] < held[2]

    def test_severity_zero_returns_same_sequence(self):
        seq = imu.load("bee-hover", n=50, seed=0)
        assert corrupt_sequence(seq, "dropout", 0.0, seed=1) is seq

    def test_truth_untouched_by_corruption(self):
        seq = imu.load("bee-hover", n=80, seed=0)
        out = corrupt_sequence(seq, "bias", 1.0, seed=2)
        np.testing.assert_array_equal(out.truth, seq.truth)
        assert not np.array_equal(out.gyro, seq.gyro)


class TestProbeFaults:
    def _trace(self, n=1000):
        rng = np.random.default_rng(0)
        times = np.arange(n) * 1e-5
        current = 0.01 + 0.002 * rng.random(n)
        return CurrentTrace(times, current, 3.3)

    def test_corrupt_trace_drops_and_saturates(self):
        trace = self._trace()
        out = corrupt_trace(trace, 0.8, np.random.default_rng(1))
        assert len(out) < len(trace)
        assert out.current_a.max() < trace.current_a.max()

    def test_corrupt_trace_severity_zero_identity(self):
        trace = self._trace()
        assert corrupt_trace(trace, 0.0, np.random.default_rng(1)) is trace

    def test_power_monitor_explicit_rng_reproducible(self):
        def capture(rng):
            mon = PowerMonitor(rng=rng)
            mon.arm()

            class Trigger:
                pin, state, time_s = "trigger", True, 0.0

            mon.on_gpio(Trigger())
            mon.add_segment(0.0, 1e-3, 0.05, 0.08)
            return mon.capture()

        a = capture(np.random.default_rng(11))
        b = capture(np.random.default_rng(11))
        c = capture(np.random.default_rng(12))
        np.testing.assert_array_equal(a.current_a, b.current_a)
        assert not np.array_equal(a.current_a, c.current_a)

    def test_logic_analyzer_edge_filter_drops_edges(self):
        def run(edge_filter):
            bus = GpioBus()
            la = LogicAnalyzer(bus, edge_filter=edge_filter)
            la.start()
            for i in range(200):
                bus.write("roi", i % 2 == 0, i * 1e-6)
            return len(la.edges)

        full = run(None)
        faulted = run(make_edge_filter(0.9, seed=4))
        assert faulted < full


class TestMissionFaults:
    def test_hover_completion_monotone_in_brownout_severity(self):
        completed = []
        for severity in (0.0, 0.5, 1.0):
            record = _mission_worker(("brownout", "hover", "m33", severity, 123))
            completed.append(record["completed"])
        # Completion only ever degrades with severity, and a full-depth
        # brownout crosses the reset threshold and kills the flight.
        assert all(a >= b for a, b in zip(completed, completed[1:]))
        assert completed[0] is True
        assert completed[-1] is False

    def test_brownout_reset_reports_failure_forensics(self):
        record = _mission_worker(("brownout", "hover", "m33", 1.0, 123))
        assert record["aborted_by"] == "brownout_reset"
        assert record["time_to_failure_s"] is not None
        assert 0.0 < record["time_to_failure_s"] < HoverMission().duration_s
        assert record["energy_to_abort_j"] > 0.0
        assert any(e["kind"] == "brownout_reset" for e in record["events"])

    def test_overrun_storm_inflates_latency_and_slows_loop(self):
        calm = _mission_worker(("overrun-storm", "hover", "m0plus", 0.0, 5))
        storm = _mission_worker(("overrun-storm", "hover", "m0plus", 1.0, 5))
        assert storm["worst_latency_s"] > 2.0 * calm["worst_latency_s"]
        assert storm["effective_rate_hz"] < calm["effective_rate_hz"]
        assert storm["fault_events"] > 0

    def test_overrun_degraded_telemetry_emitted(self):
        telemetry = Telemetry()
        result = FlappingWingRunner(
            arch=get_arch("m0plus"), telemetry=telemetry
        ).run(HoverMission())
        events = [e for e in telemetry.events if e.kind == "overrun_degraded"]
        assert len(events) == 1
        assert events[0].detail["count"] == result.overruns > 0
        assert events[0].detail["worst_latency_us"] == pytest.approx(
            result.worst_latency_s * 1e6, abs=1e-2
        )


class TestCampaignDeterminism:
    SPEC = FaultCampaignSpec(
        fault="brownout",
        severities=(0.5, 1.0),
        missions=("hover",),
        kernels=("mahony",),
        archs=("m33",),
        seed=42,
    )

    def test_cell_seeds_stable_and_distinct(self):
        cells_a = plan_mission_cells(self.SPEC)
        cells_b = plan_mission_cells(self.SPEC)
        assert [c.seed for c in cells_a] == [c.seed for c in cells_b]
        assert len({c.seed for c in cells_a}) == len(cells_a)

    def test_report_byte_stable_across_runs_and_jobs(self, tmp_path):
        report_1 = build_report(run_campaign(self.SPEC, jobs=1))
        report_2 = build_report(run_campaign(self.SPEC, jobs=2))
        path_1 = save_report(report_1, tmp_path / "r1.json")
        path_2 = save_report(report_2, tmp_path / "r2.json")
        assert path_1.read_bytes() == path_2.read_bytes()

    def test_report_structure_and_scores(self):
        report = build_report(run_campaign(self.SPEC))
        assert report["fault"] == "brownout"
        assert report["severities"][0] == 0.0  # baseline always anchored
        assert len(report["missions"]) == 1
        assert len(report["kernels"]) == 1
        for entry in report["missions"] + report["kernels"]:
            assert 0.0 <= entry["resilience_score"] <= 1.0
        assert report["missions"][0]["first_failing_severity"] == 1.0
        assert 0.0 <= report["overall_resilience_score"] <= 1.0
        json.dumps(report)  # report must be pure primitives

    def test_kernel_grid_monotone_degradation(self):
        report = build_report(run_campaign(FaultCampaignSpec(
            fault="cpi-storm", severities=(0.5, 1.0),
            kernels=("mahony",), archs=("m33",), seed=0,
        )))
        curve = report["kernels"][0]["curve"]
        latencies = [p["unit_latency_us"] for p in curve]
        energies = [p["unit_energy_uj"] for p in curve]
        assert latencies == sorted(latencies)
        assert latencies[0] < latencies[-1]
        assert energies[0] < energies[-1]

    def test_render_report_mentions_failure_point(self):
        text = render_report(build_report(run_campaign(self.SPEC)))
        assert "brownout" in text
        assert "fails at severity 1" in text
        assert "overall resilience score" in text
