"""Tests for the control kernels (LQR, TinyMPC, OSQP-MPC, geom, SMAC)."""

import numpy as np
import pytest

from repro.control.dynamics import bee_hover, fly_longitudinal, simulate_closed_loop
from repro.control.geometric import GeometricController
from repro.control.lqr import LqrController, lqr_gain, solve_dare
from repro.control.osqp_mpc import OsqpMpc, condense_mpc
from repro.control.smac import SlidingModeAdaptiveController
from repro.control.tinympc import TinyMpc
from repro.mcu.ops import OpCounter


class TestDynamics:
    def test_fly_model_dimensions(self):
        m = fly_longitudinal()
        assert m.nx == 4 and m.nu == 1

    def test_bee_model_dimensions(self):
        m = bee_hover()
        assert m.nx == 6 and m.nu == 3

    def test_clip_input(self):
        m = bee_hover(accel_limit=2.0)
        u = m.clip_input(np.array([5.0, -5.0, 1.0]))
        assert u.tolist() == [2.0, -2.0, 1.0]

    def test_step_linear(self):
        m = fly_longitudinal()
        x = np.array([0.0, 1.0, 0.0, 0.0])
        x2 = m.step(x, np.zeros(1))
        assert x2[0] == pytest.approx(m.dt)  # position integrates velocity

    def test_simulate_closed_loop_shape(self):
        m = fly_longitudinal()
        xs = simulate_closed_loop(m, lambda x, k: np.zeros(1), np.zeros(4), 10)
        assert xs.shape == (11, 4)


class TestDareLqr:
    def test_dare_fixed_point(self):
        m = fly_longitudinal()
        p = solve_dare(m.a, m.b, m.q, m.r)
        btp = m.b.T @ p
        k = np.linalg.solve(m.r + btp @ m.b, btp @ m.a)
        p_again = m.q + m.a.T @ p @ (m.a - m.b @ k)
        assert np.allclose(p, p_again, atol=1e-6)

    def test_gain_stabilizes(self):
        m = fly_longitudinal()
        k = lqr_gain(m)
        eigs = np.abs(np.linalg.eigvals(m.a - m.b @ k))
        assert eigs.max() < 1.0

    def test_controller_regulates(self):
        m = fly_longitudinal()
        ctrl = LqrController(m)
        c = OpCounter()
        x = np.array([0.02, -0.01, 0.01, 0.0])
        p = solve_dare(m.a, m.b, m.q, m.r)
        v0 = x @ p @ x
        for _ in range(500):
            x = m.step(x, m.clip_input(ctrl.compute(c, x)))
        assert x @ p @ x < 0.1 * v0

    def test_lyapunov_decrease_every_step(self):
        m = fly_longitudinal()
        ctrl = LqrController(m)
        c = OpCounter()
        p = solve_dare(m.a, m.b, m.q, m.r)
        x = np.array([0.02, -0.01, 0.01, 0.0])
        for _ in range(50):
            x_next = m.step(x, ctrl.compute(c, x))
            assert x_next @ p @ x_next <= x @ p @ x + 1e-12
            x = x_next

    def test_per_step_cost_tiny(self):
        """fly-lqr is the cheapest kernel in the suite (Table IV: ~1 us)."""
        m = fly_longitudinal()
        ctrl = LqrController(m)
        c = OpCounter()
        ctrl.compute(c, np.zeros(4))
        assert c.trace.total < 200

    def test_reference_tracking(self):
        m = fly_longitudinal()
        ctrl = LqrController(m)
        c = OpCounter()
        ref = np.array([0.05, 0.0, 0.0, 0.0])
        x = np.zeros(4)
        for _ in range(800):
            x = m.step(x, m.clip_input(ctrl.compute(c, x, x_ref=ref)))
        assert x[0] == pytest.approx(0.05, abs=0.02)


class TestTinyMpc:
    def test_cache_matches_true_lqr(self):
        m = fly_longitudinal()
        mpc = TinyMpc(m, horizon=10)
        mpc.setup_cache(OpCounter())
        k_true = lqr_gain(m)
        # rho is small relative to R, so gains should be close.
        assert np.allclose(mpc.k_inf, k_true, rtol=0.1)

    def test_unconstrained_solution_matches_lqr(self):
        m = fly_longitudinal()
        mpc = TinyMpc(m, horizon=10)
        c = OpCounter()
        x0 = np.array([0.001, 0.0, 0.0, 0.0])  # small: no saturation
        res = mpc.solve(c, x0, np.zeros((11, 4)))
        u_lqr = -(lqr_gain(m) @ x0)
        assert res.u0 == pytest.approx(u_lqr, rel=0.15)

    def test_constraints_respected(self):
        m = fly_longitudinal()
        mpc = TinyMpc(m, horizon=10)
        c = OpCounter()
        x0 = np.array([0.5, 0.5, 0.3, 0.0])  # big: saturates
        res = mpc.solve(c, x0, np.zeros((11, 4)), max_iters=20)
        assert np.all(res.u0 >= m.u_min - 1e-9)
        assert np.all(res.u0 <= m.u_max + 1e-9)

    def test_fixed_iterations_mode(self):
        m = fly_longitudinal()
        mpc = TinyMpc(m, horizon=10)
        c = OpCounter()
        res = mpc.solve(c, np.zeros(4), np.zeros((11, 4)), max_iters=7,
                        fixed_iterations=True)
        assert res.iterations == 7

    def test_startup_is_expensive(self):
        """The paper's observation: start-up Riccati work is substantial."""
        m = fly_longitudinal()
        mpc = TinyMpc(m, horizon=10)
        c_setup = OpCounter()
        mpc.setup_cache(c_setup)
        c_solve = OpCounter()
        mpc.solve(c_solve, np.zeros(4), np.zeros((11, 4)))
        assert c_setup.trace.total > c_solve.trace.total

    def test_closed_loop_stabilizes(self):
        m = fly_longitudinal()
        mpc = TinyMpc(m, horizon=10)
        c = OpCounter()
        mpc.setup_cache(c)
        x = np.array([0.02, 0.02, -0.01, 0.0])
        p = solve_dare(m.a, m.b, m.q, m.r)
        v0 = x @ p @ x
        for _ in range(150):
            res = mpc.solve(c, x, np.zeros((11, 4)), max_iters=8)
            x = m.step(x, res.u0)
        assert x @ p @ x < 0.5 * v0


class TestOsqpMpc:
    def test_condensed_cost_is_spd(self):
        p_mat, _, _, _ = condense_mpc(bee_hover(), 6)
        eigs = np.linalg.eigvalsh(p_mat)
        assert eigs.min() > 0

    def test_unconstrained_matches_direct_qp(self):
        m = bee_hover()
        mpc = OsqpMpc(m, horizon=6)
        c = OpCounter()
        x0 = np.array([0.01, 0.0, 0.01, 0, 0, 0])
        q = mpc._linear_term(c, x0, np.zeros((6, 6)))
        direct = np.linalg.solve(mpc.p_mat, -q)
        res = mpc.solve(c, x0, np.zeros((6, 6)), max_iters=400, tol=1e-8)
        assert res.u0 == pytest.approx(direct[:3], abs=1e-3)

    def test_constraints_active_and_respected(self):
        m = bee_hover(accel_limit=0.5)
        mpc = OsqpMpc(m, horizon=6)
        c = OpCounter()
        x0 = np.array([0.4, -0.4, 0.4, 0, 0, 0])
        res = mpc.solve(c, x0, np.zeros((6, 6)), max_iters=100)
        assert np.all(np.abs(res.u0) <= 0.5 + 1e-6)
        assert np.abs(res.u0).max() == pytest.approx(0.5, abs=1e-3)

    def test_termination_checked_every_n(self):
        m = bee_hover()
        mpc = OsqpMpc(m, horizon=4)
        c = OpCounter()
        res = mpc.solve(c, np.zeros(6), np.zeros((4, 6)), check_every=10)
        assert res.iterations % 10 == 0 or res.iterations == 50

    def test_warm_start_reduces_iterations(self):
        m = bee_hover()
        mpc = OsqpMpc(m, horizon=6)
        c = OpCounter()
        x0 = np.array([0.05, -0.04, 0.06, 0, 0, 0])
        first = mpc.solve(c, x0, np.zeros((6, 6)))
        second = mpc.solve(c, m.step(x0, first.u0), np.zeros((6, 6)))
        assert second.iterations <= first.iterations

    def test_flops_per_solve_positive(self):
        assert OsqpMpc(bee_hover(), horizon=6).flops_per_solve() > 0


class TestGeometricController:
    def test_hover_equilibrium_commands_weight(self):
        ctrl = GeometricController()
        c = OpCounter()
        zero = np.zeros(3)
        cmd = ctrl.compute(c, zero, zero, np.eye(3), zero, zero, zero, zero)
        assert cmd.thrust == pytest.approx(ctrl.mass * 9.81, rel=1e-6)
        assert np.allclose(cmd.moment, 0.0, atol=1e-9)

    def test_tilt_produces_correcting_moment(self):
        from repro.control.suite import _rodrigues

        ctrl = GeometricController()
        c = OpCounter()
        zero = np.zeros(3)
        r = _rodrigues(np.array([1.0, 0.0, 0.0]), 0.3)  # roll tilt
        cmd = ctrl.compute(c, zero, zero, r, zero, zero, zero, zero)
        assert abs(cmd.moment[0]) > 0  # roll moment commanded

    def test_desired_rotation_is_valid(self):
        ctrl = GeometricController()
        c = OpCounter()
        zero = np.zeros(3)
        cmd = ctrl.compute(c, np.array([0.1, 0, 0]), zero, np.eye(3), zero,
                           zero, zero, zero)
        rd = cmd.r_desired
        assert np.allclose(rd @ rd.T, np.eye(3), atol=1e-9)

    def test_waveform_synthesized(self):
        ctrl = GeometricController()
        c = OpCounter()
        zero = np.zeros(3)
        cmd = ctrl.compute(c, zero, zero, np.eye(3), zero, zero, zero, zero)
        assert cmd.wing_waveform.shape == (2, ctrl.N_PHASE_SAMPLES)

    def test_float_dominated_instruction_mix(self):
        """Table III: bee-geom is an F-heavy kernel."""
        ctrl = GeometricController()
        c = OpCounter()
        zero = np.zeros(3)
        ctrl.compute(c, zero, zero, np.eye(3), zero, zero, zero, zero)
        assert c.trace.n_float > c.trace.n_branch


class TestSmac:
    def test_rejects_periodic_disturbance(self):
        ctrl = SlidingModeAdaptiveController()
        c = OpCounter()
        dt = 0.001
        pos = np.array([0.08, -0.05, 0.06])
        vel = np.zeros(3)
        errs = [np.abs(pos).mean()]
        rng = np.random.default_rng(0)
        for k in range(400):
            t = k * dt
            cmd = ctrl.compute(c, t, dt, pos.copy(), vel.copy())
            dist = 1.8 * np.sin(2 * np.pi * ctrl.stroke_freq * t + np.array([0, 1.1, 2.3]))
            acc = cmd.u + dist
            vel = vel + acc * dt
            pos = pos + vel * dt
            errs.append(np.abs(pos).mean())
        assert np.mean(errs[-50:]) < 0.5 * np.mean(errs[:20])

    def test_adaptation_parameters_bounded(self):
        ctrl = SlidingModeAdaptiveController()
        c = OpCounter()
        for k in range(200):
            ctrl.compute(c, k * 0.001, 0.001, np.full(3, 0.5), np.full(3, 0.1))
        assert np.abs(ctrl.theta).max() <= 5.0

    def test_reset_clears_state(self):
        ctrl = SlidingModeAdaptiveController()
        c = OpCounter()
        ctrl.compute(c, 0.0, 0.001, np.ones(3), np.ones(3))
        ctrl.reset()
        assert not ctrl.theta.any()

    def test_inside_boundary_layer_freezes_adaptation(self):
        ctrl = SlidingModeAdaptiveController()
        c = OpCounter()
        ctrl.compute(c, 0.0, 0.001, np.full(3, 1e-4), np.full(3, 1e-4))
        assert not ctrl.theta.any()

    def test_rls_matrix_cost_dominates(self):
        """The composite RLS adaptation is the expensive path (bee-smac's
        Table IV position above bee-geom)."""
        ctrl = SlidingModeAdaptiveController()
        c_active, c_frozen = OpCounter(), OpCounter()
        ctrl.compute(c_active, 0.0, 0.001, np.full(3, 0.5), np.full(3, 0.5))
        ctrl.reset()
        ctrl.compute(c_frozen, 0.0, 0.001, np.full(3, 1e-4), np.full(3, 1e-4))
        assert c_active.trace.total > 3 * c_frozen.trace.total
