"""Tests for the EKF kernels (base framework, fly-ekf, bee-ceekf)."""

import numpy as np
import pytest

from repro.datasets import fusion
from repro.ekf.base import SEQUENTIAL, STRATEGIES, SYNC, TRUNCATED, ExtendedKalmanFilter
from repro.ekf.bee_ekf import BeeComplementaryEkf
from repro.ekf.fly_ekf import FlyEkf
from repro.mcu.ops import OpCounter


def run_fly(strategy, n=150, seed=0):
    seq = fusion.fly_synth(n=n, seed=seed)
    filt = FlyEkf(strategy=strategy)
    c = OpCounter()
    errors = []
    for s in seq.samples:
        x = filt.step(seq.dt, c, s.imu, s.tof, s.flow)
        errors.append(x - s.true_state)
    return filt, np.array(errors), c


class TestGenericEkf:
    @staticmethod
    def _linear_ekf():
        # 2-state constant-velocity model, position measured.
        def dyn(x, u, dt):
            return np.array([x[0] + x[1] * dt, x[1]])

        def jac(x, u, dt):
            return np.array([[1.0, dt], [0.0, 1.0]])

        return ExtendedKalmanFilter(
            x0=np.zeros(2), p0=np.eye(2), dynamics=dyn, dynamics_jacobian=jac,
            process_noise=np.eye(2) * 1e-4,
        )

    def test_tracks_linear_system(self):
        rng = np.random.default_rng(0)
        ekf = self._linear_ekf()
        c = OpCounter()
        true_pos, true_vel = 0.0, 0.7
        h_jac = np.array([[1.0, 0.0]])
        for _ in range(100):
            true_pos += true_vel * 0.01
            ekf.predict(None, 0.01, c)
            z = np.array([true_pos + rng.normal(0, 0.005)])
            ekf.update_sync(z, lambda s: np.array([s[0]]), h_jac,
                            np.array([[2.5e-5]]), c)
        assert ekf.x[0] == pytest.approx(true_pos, abs=0.02)
        assert ekf.x[1] == pytest.approx(true_vel, abs=0.15)

    def test_sequential_equals_sync_for_diagonal_noise(self):
        """With independent scalar measurements both updates should land
        near the same posterior."""
        rng = np.random.default_rng(1)
        ekf_a, ekf_b = self._linear_ekf(), self._linear_ekf()
        c = OpCounter()
        h_jac = np.array([[1.0, 0.0], [0.0, 1.0]])
        r = np.array([1e-4, 1e-4])
        for _ in range(50):
            z = np.array([rng.normal(0.5, 0.01), rng.normal(0.1, 0.01)])
            ekf_a.predict(None, 0.01, c)
            ekf_b.predict(None, 0.01, c)
            ekf_a.update_sync(z, lambda s: s.copy(), h_jac, np.diag(r), c)
            ekf_b.update_sequential(z, lambda s: s.copy(), h_jac, r, c)
        assert np.allclose(ekf_a.x, ekf_b.x, atol=0.02)

    def test_numeric_jacobian_matches_analytic(self):
        ekf = self._linear_ekf()
        c = OpCounter()
        analytic = ekf.dynamics_jacobian(ekf.x, None, 0.01)
        ekf.dynamics_jacobian = None
        numeric = ekf._numeric_jacobian_f(None, 0.01, c)
        assert np.allclose(numeric, analytic, atol=1e-4)

    def test_covariance_stays_psd(self):
        ekf = self._linear_ekf()
        c = OpCounter()
        for _ in range(200):
            ekf.predict(None, 0.01, c)
            ekf.update_sequential(np.array([0.0]), lambda s: np.array([s[0]]),
                                  np.array([[1.0, 0.0]]), np.array([1e-4]), c)
        assert ekf.is_covariance_psd()

    def test_truncated_update_touches_fewer_states(self):
        ekf = self._linear_ekf()
        c1, c2 = OpCounter(), OpCounter()
        z = np.array([0.3])
        h = np.array([[1.0, 0.0]])
        r = np.array([1e-4])
        ekf.update_sequential(z, lambda s: np.array([s[0]]), h, r, c1)
        ekf.update_sequential(z, lambda s: np.array([s[0]]), h, r, c2,
                              truncate_to=1)
        assert c2.trace.total < c1.trace.total


class TestFlyEkf:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_tracks_flight(self, strategy):
        _, errors, _ = run_fly(strategy)
        tail = errors[len(errors) // 2 :]
        assert np.sqrt(np.mean(tail[:, 0] ** 2)) < 0.02  # altitude
        assert np.sqrt(np.mean(tail[:, 3] ** 2)) < 0.02  # pitch

    def test_strategy_cost_ordering(self):
        """Table IV/VIII: sync < seq; trunc cheapest of the sequential pair."""
        costs = {}
        for strategy in STRATEGIES:
            _, _, c = run_fly(strategy, n=100)
            costs[strategy] = c.trace.total
        assert costs[SEQUENTIAL] > costs[SYNC]
        assert costs[TRUNCATED] < costs[SEQUENTIAL]

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            FlyEkf(strategy="batch")

    def test_flop_estimates_ordered(self):
        assert FlyEkf.flops_per_update(SYNC) > FlyEkf.flops_per_update(TRUNCATED)

    def test_runs_without_measurements(self):
        filt = FlyEkf()
        c = OpCounter()
        x = filt.step(0.002, c, np.array([0.01, 0.0]))
        assert np.isfinite(x).all()


class TestBeeEkf:
    def test_tracks_hil_trace(self):
        seq = fusion.bee_hil(n=60)
        filt = BeeComplementaryEkf()
        c = OpCounter()
        errors = []
        for s in seq.samples:
            x = filt.step(seq.dt, c, s.imu, s.tof)
            errors.append(x - s.true_state)
        errors = np.array(errors)
        tail = errors[len(errors) // 2 :]
        assert np.sqrt(np.mean(tail[:, 0:3] ** 2)) < 0.12
        assert np.sqrt(np.mean(tail[:, 6:9] ** 2)) < 0.05

    def test_much_heavier_than_fly_ekf(self):
        """The generic-framework deployment costs far more per update
        (Table IV: bee-ceekf ~100x fly-ekf)."""
        _, _, c_fly = run_fly(SYNC, n=50)
        seq = fusion.bee_hil(n=50)
        filt = BeeComplementaryEkf()
        c_bee = OpCounter()
        for s in seq.samples:
            filt.step(seq.dt, c_bee, s.imu, s.tof)
        per_update_fly = c_fly.trace.total / 50
        per_update_bee = c_bee.trace.total / 50
        assert per_update_bee > 10 * per_update_fly

    def test_flop_estimate_far_below_recorded(self):
        """Case Study 3's core claim, in trace form."""
        seq = fusion.bee_hil(n=20)
        filt = BeeComplementaryEkf()
        c = OpCounter()
        for s in seq.samples:
            filt.step(seq.dt, c, s.imu, s.tof)
        recorded_per_update = c.trace.total / 20
        assert recorded_per_update > 20 * BeeComplementaryEkf.flops_per_update()
