"""Tests for the sharded, tiered, admission-controlled service layer.

The contract under test (see ``docs/service.md``):

* the three-tier read path: L1 evictions spill to L2, an L1 miss that
  hits L2 promotes back into L1, per-tier hits are counted;
* shard-count invariance: the same 64-query burst returns byte-identical
  answers at 1, 2, and 4 shards, with the L2 spill enabled and disabled,
  and matches the serial reference driver;
* admission control: a full shard sheds with a typed
  ``ServiceOverloaded`` (deterministic ``retry_after``) instead of
  blocking, and batch priority sheds before interactive;
* the typed error taxonomy round-trips the wire envelope, and the
  client re-raises typed classes, honors per-query timeouts, and
  retries shed queries with backoff.
"""

import dataclasses
import json
import socket
import threading

import pytest

import repro.obs as obs
from repro.core.config import HarnessConfig
from repro.core.experiment import SweepSpec, run_sweep_serial
from repro.core.experiment_io import result_to_dict
from repro.mcu.arch import get_arch
from repro.mcu.cache import CACHE_OFF, CACHE_ON
from repro.service import (
    CharacterizeQuery,
    QueryOptions,
    QueryValidationError,
    ResultCache,
    ServiceClient,
    ServiceError,
    ServiceOverloaded,
    ServiceServer,
    ServiceTimeout,
    ShardPool,
    ShardUnavailable,
    SpillCache,
    TieredResultCache,
    error_from_record,
    error_record,
    parse_request,
    query_key,
    request_of,
    shard_of,
)

#: One rep, no warmup, shrunk sequences: answers stay exact, tests stay fast.
CONFIG = HarnessConfig(reps=1, warmup_reps=0)
OVERRIDES = {"*": {"n_samples": 40}}

KERNELS = ("mahony", "madgwick")
ARCH_NAMES = ("m4", "m33")
CACHE_LABELS = ("C", "NC")


def distinct_cells():
    """The 8 distinct characterize cells the burst tests sweep."""
    return [
        CharacterizeQuery(kernel=k, arch=a, cache=c)
        for k in KERNELS for a in ARCH_NAMES for c in CACHE_LABELS
    ]


@pytest.fixture
def metrics():
    """Enabled metrics registry, restored to disabled afterwards."""
    _, registry = obs.observe()
    yield registry
    obs.unobserve()


# ------------------------------------------------------------ cache tiers


def test_l1_evict_spills_to_l2_and_promotes_back(tmp_path):
    cache = TieredResultCache(capacity=2, spill_dir=tmp_path / "spill")
    cache.put("k1", {"answer": 1})
    cache.put("k2", {"answer": 2})
    cache.put("k3", {"answer": 3})  # evicts k1 -> spill

    assert "k1" in cache.spill
    assert len(cache.spill) == 1

    # L1 miss, L2 hit, promoted back into L1 (evicting k2 to spill).
    payload, tier = cache.get_tiered("k1")
    assert payload == {"answer": 1}
    assert tier == "l2"
    payload, tier = cache.get_tiered("k1")
    assert tier == "l1"
    assert "k2" in cache.spill

    stats = cache.as_dict()
    assert stats["l2"]["hits"] == 1
    assert stats["l2"]["promotions"] == 1
    assert stats["l2"]["puts"] == 2  # k1 then k2

    # A never-seen key misses every tier.
    payload, tier = cache.get_tiered("k-unknown")
    assert payload is None and tier is None


def test_spill_cache_ignores_torn_and_foreign_entries(tmp_path):
    spill = SpillCache(tmp_path)
    spill.put("good", {"x": 1})
    (tmp_path / "torn.json").write_text("{not json", encoding="utf-8")
    (tmp_path / "foreign.json").write_text(
        json.dumps({"spill_version": 999, "key": "foreign", "payload": {}}),
        encoding="utf-8",
    )
    assert spill.get("good") == {"x": 1}
    assert spill.get("torn") is None
    assert spill.get("foreign") is None
    assert spill.get("absent") is None
    assert spill.as_dict()["misses"] == 3


def test_plain_result_cache_get_tiered_is_l1_only():
    cache = ResultCache(capacity=2)
    cache.put("k", {"a": 1})
    assert cache.get_tiered("k") == ({"a": 1}, "l1")
    assert cache.get_tiered("absent") == (None, None)


# --------------------------------------------------- shard routing basics


def test_shard_of_is_deterministic_and_in_range():
    keys = [query_key(q, CONFIG) for q in distinct_cells()]
    for key in keys:
        assert shard_of(key, 1) == 0
        for n in (2, 4, 7):
            index = shard_of(key, n)
            assert 0 <= index < n
            assert index == shard_of(key, n)  # stable


# ------------------------------------------- the headline invariance burst


def test_burst_is_byte_identical_at_any_shard_count_and_spill_state(
    metrics, tmp_path
):
    cells = distinct_cells()
    queries = cells * 8  # 64 queries, duplicates interleaved

    serial = run_sweep_serial(SweepSpec(
        kernels=list(KERNELS),
        archs=[get_arch(a) for a in ARCH_NAMES],
        caches=(CACHE_ON, CACHE_OFF),
        config=CONFIG,
        overrides=OVERRIDES,
    ))
    expected = {
        (q.kernel, q.arch, q.cache): json.dumps(
            result_to_dict(serial.get(q.kernel, q.arch, q.cache)),
            sort_keys=True,
        )
        for q in cells
    }

    rendered = {}
    for n_shards in (1, 2, 4):
        for spill in (False, True):
            spill_dir = (
                tmp_path / f"spill-{n_shards}-{spill}" if spill else None
            )
            # capacity < distinct cells so the spill runs actually
            # evict and re-load through L2 mid-burst.
            with ShardPool(
                config=CONFIG,
                overrides=OVERRIDES,
                n_shards=n_shards,
                capacity=4,
                spill_dir=spill_dir,
            ) as pool:
                first = pool.ask_many(queries, timeout=300)
                again = [pool.ask(q, timeout=300) for q in cells]
                # An immediate repeat is a guaranteed L1 hit (the cell
                # was just promoted/written into the LRU).
                encore = pool.ask(cells[-1], timeout=300)
            assert json.dumps(encore, sort_keys=True) == \
                json.dumps(again[-1], sort_keys=True)
            rendered[(n_shards, spill)] = json.dumps(first, sort_keys=True)
            # Round 2 (served via L1/L2, never re-solved) is identical.
            for q, payload in zip(cells, again):
                assert json.dumps(payload, sort_keys=True) == json.dumps(
                    first[cells.index(q)], sort_keys=True
                )
            # Every answer matches the serial reference driver.
            for q, payload in zip(cells, first[:len(cells)]):
                key = (q.kernel, q.arch, q.cache)
                assert json.dumps(payload["result"], sort_keys=True) == \
                    expected[key]

    # One rendering, whatever the topology.
    assert len(set(rendered.values())) == 1

    counters = metrics.as_dict()["counters"]
    # 6 topologies x (64 burst + 8 re-asks + 1 encore), nothing lost
    # or duplicated.
    assert counters["service.queries"] == 6 * (64 + 8 + 1)
    assert counters.get("service.errors", 0) == 0
    # The capacity-4 L1 cannot hold 8 cells: spill runs must hit L2.
    assert counters["service.l2_hits"] >= 1
    assert counters["service.l1_hits"] >= 1


# ----------------------------------------------------- admission control


def _gate_dispatcher(pool, shard_index=0):
    """Block a shard's batch processing behind an event; returns the gate."""
    broker = pool._shards[shard_index]
    gate = threading.Event()
    original = broker._run_batch

    def gated(batch):
        gate.wait(30)
        original(batch)

    broker._run_batch = gated
    return gate


def test_full_shard_sheds_with_typed_overload_and_retry_hint():
    pool = ShardPool(
        config=CONFIG, overrides=OVERRIDES, n_shards=1, max_inflight=2
    )
    gate = _gate_dispatcher(pool)
    try:
        t1 = pool.submit(CharacterizeQuery(kernel="mahony"))
        t2 = pool.submit(CharacterizeQuery(kernel="madgwick"))
        with pytest.raises(ServiceOverloaded) as shed:
            pool.submit(CharacterizeQuery(kernel="mahony", arch="m4"))
        assert shed.value.retry_after is not None
        assert shed.value.retry_after > 0
        assert shed.value.code == "service-overloaded"
        # Deterministic: the same admission state sheds identically.
        with pytest.raises(ServiceOverloaded) as shed2:
            pool.submit(CharacterizeQuery(kernel="mahony", arch="m4"))
        assert shed2.value.retry_after == shed.value.retry_after

        gate.set()
        pool.result(t1, timeout=300)
        pool.result(t2, timeout=300)
        # Slots released on delivery: submits are admitted again.
        assert pool.ask(
            CharacterizeQuery(kernel="mahony"), timeout=300
        )["kind"] == "characterize"
        assert pool.stats()["shed"] == 2
    finally:
        gate.set()
        pool.close()


def test_batch_priority_sheds_before_interactive():
    batch_opts = QueryOptions(priority="batch")
    pool = ShardPool(
        config=CONFIG, overrides=OVERRIDES, n_shards=1, max_inflight=4
    )  # batch_limit = 2
    gate = _gate_dispatcher(pool)
    try:
        cells = distinct_cells()
        tickets = [
            pool.submit(dataclasses.replace(cells[0], options=batch_opts)),
            pool.submit(dataclasses.replace(cells[1], options=batch_opts)),
        ]
        # Batch share exhausted; interactive still admitted.
        with pytest.raises(ServiceOverloaded):
            pool.submit(dataclasses.replace(cells[2], options=batch_opts))
        tickets.append(pool.submit(cells[3]))
        tickets.append(pool.submit(cells[4]))
        # Now the whole shard is full: interactive sheds too.
        with pytest.raises(ServiceOverloaded):
            pool.submit(cells[5])
        gate.set()
        for ticket in tickets:
            pool.result(ticket, timeout=300)
    finally:
        gate.set()
        pool.close()


def test_closed_pool_raises_shard_unavailable():
    pool = ShardPool(config=CONFIG, overrides=OVERRIDES, n_shards=2)
    pool.close()
    with pytest.raises(ShardUnavailable):
        pool.submit(CharacterizeQuery(kernel="mahony"))


def test_pool_lifts_validation_errors_into_the_taxonomy():
    with ShardPool(config=CONFIG, overrides=OVERRIDES) as pool:
        with pytest.raises(QueryValidationError, match="unknown kernel"):
            pool.submit(CharacterizeQuery(kernel="nope"))
        # QueryValidationError doubles as ValueError for legacy callers.
        with pytest.raises(ValueError):
            pool.submit(CharacterizeQuery(kernel="nope"))


# ------------------------------------------------------- query options


def test_options_do_not_change_the_content_address():
    q = CharacterizeQuery(kernel="mahony", arch="m4", cache="NC")
    variants = [
        dataclasses.replace(q, options=QueryOptions(priority="batch")),
        dataclasses.replace(q, options=QueryOptions(timeout=5.0)),
        dataclasses.replace(q, options=QueryOptions(cache="bypass")),
    ]
    base = query_key(q, CONFIG)
    for variant in variants:
        assert query_key(variant, CONFIG) == base


def test_options_round_trip_the_wire_envelope():
    q = CharacterizeQuery(
        kernel="mahony",
        options=QueryOptions(priority="batch", timeout=2.5, cache="refresh"),
    )
    request = request_of(q)
    assert request["v"] == 2
    assert request["options"] == {
        "priority": "batch", "timeout": 2.5, "cache": "refresh",
    }
    assert parse_request(request) == q

    # Default options keep the bare v1 request shape (old servers work).
    bare = request_of(CharacterizeQuery(kernel="mahony"))
    assert "v" not in bare and "options" not in bare


def test_option_validation_rejects_unknown_settings():
    with pytest.raises(QueryValidationError, match="unknown priority"):
        QueryOptions(priority="urgent").validated()
    with pytest.raises(QueryValidationError, match="reserved"):
        QueryOptions(fidelity="approx").validated()
    with pytest.raises(QueryValidationError, match="unknown cache policy"):
        QueryOptions(cache="write-through").validated()
    with pytest.raises(QueryValidationError, match="timeout"):
        QueryOptions(timeout=-1.0).validated()
    with pytest.raises(QueryValidationError, match="unknown option field"):
        QueryOptions.from_wire({"nice": 10})
    with pytest.raises(QueryValidationError, match="unsupported wire version"):
        parse_request({"v": 99, "op": "ping"})


def test_cache_policy_bypass_and_refresh(metrics):
    q = CharacterizeQuery(kernel="mahony", arch="m33")
    with ShardPool(config=CONFIG, overrides=OVERRIDES) as pool:
        first = pool.ask(q, timeout=300)
        hit = pool.ask(q, timeout=300)
        bypass = pool.ask(
            dataclasses.replace(q, options=QueryOptions(cache="bypass")),
            timeout=300,
        )
        refresh = pool.ask(
            dataclasses.replace(q, options=QueryOptions(cache="refresh")),
            timeout=300,
        )
        stats = pool.stats()
    # Identical bytes whichever path produced them.
    renderings = {
        json.dumps(p, sort_keys=True) for p in (first, hit, bypass, refresh)
    }
    assert len(renderings) == 1
    # bypass and refresh each skipped the answer-cache read.
    assert stats["cache"]["misses"] >= 1
    counters = metrics.as_dict()["counters"]
    assert counters["service.misses"] == 3  # first + bypass + refresh
    assert counters["service.hits"] == 1


# ------------------------------------------------ typed wire error records


@pytest.mark.parametrize("exc", [
    ServiceError("plain failure"),
    QueryValidationError("unknown kernel 'nope'"),
    ServiceOverloaded("shard at capacity", retry_after=0.075),
    ShardUnavailable("shard 1/4 is closed"),
    ServiceTimeout("no answer within 2.0s"),
])
def test_every_typed_error_round_trips_the_wire(exc):
    record = json.loads(json.dumps(error_record(exc)))  # through the wire
    back = error_from_record(record)
    assert type(back) is type(exc)
    assert str(back) == str(exc)
    assert back.code == exc.code
    assert back.retry_after == exc.retry_after


def test_untyped_errors_classify_conservatively():
    assert error_record(KeyError("unknown arch 'z80'"))["code"] == \
        "query-validation"
    assert error_record(ValueError("bad"))["code"] == "query-validation"
    assert error_record(TimeoutError("slow"))["code"] == "timeout"
    assert error_record(RuntimeError("boom"))["code"] == "internal"
    # Unknown future codes degrade to the base class, code preserved.
    future = error_from_record({"code": "quota-exceeded", "message": "m"})
    assert type(future) is ServiceError
    assert future.code == "quota-exceeded"


# ---------------------------------------------------- client + async server


def test_client_ask_raises_typed_errors_end_to_end():
    with ShardPool(config=CONFIG, overrides=OVERRIDES) as pool:
        with ServiceServer(pool, port=0) as server:
            host, port = server.address
            with ServiceClient(host, port, timeout=300.0) as client:
                payload = client.ask(CharacterizeQuery(kernel="mahony"))
                assert payload["ok"]
                assert payload["v"] == 2
                assert payload["kind"] == "characterize"
                with pytest.raises(QueryValidationError, match="nope"):
                    client.ask({"op": "characterize", "kernel": "nope"})
                stats = client.stats()
                assert stats["n_shards"] == 1
                assert stats["cache"]["entries"] >= 1

                # v1 requests still get flat string errors.
                bad = client.query({"op": "characterize", "kernel": "nope"})
                assert not bad["ok"]
                assert isinstance(bad["error"], str)
                assert "nope" in bad["error"]


def test_client_ask_sees_overload_with_retry_hint_over_the_wire():
    pool = ShardPool(
        config=CONFIG, overrides=OVERRIDES, n_shards=1, max_inflight=1
    )
    gate = _gate_dispatcher(pool)
    try:
        ticket = pool.submit(CharacterizeQuery(kernel="mahony"))
        with ServiceServer(pool, port=0) as server:
            host, port = server.address
            with ServiceClient(host, port, timeout=30.0) as client:
                with pytest.raises(ServiceOverloaded) as shed:
                    client.ask(CharacterizeQuery(kernel="madgwick"))
                assert shed.value.retry_after > 0
        gate.set()
        pool.result(ticket, timeout=300)
    finally:
        gate.set()
        pool.close()


def test_client_per_query_timeout_against_a_silent_server():
    silent = socket.create_server(("127.0.0.1", 0))
    host, port = silent.getsockname()[0], silent.getsockname()[1]
    accepted = []

    def accept_and_hold():
        conn, _ = silent.accept()
        accepted.append(conn)  # never reply

    thread = threading.Thread(target=accept_and_hold, daemon=True)
    thread.start()
    try:
        client = ServiceClient(host, port, timeout=30.0)
        with pytest.raises(ServiceTimeout):
            client.query({"op": "ping"}, timeout=0.2)
        client.close()
    finally:
        for conn in accepted:
            conn.close()
        silent.close()


def test_ask_with_retry_backs_off_then_succeeds():
    client = ServiceClient.__new__(ServiceClient)  # no socket needed
    calls = []

    def flaky_ask(request, options=None, timeout=None):
        calls.append(request)
        if len(calls) < 3:
            raise ServiceOverloaded("full", retry_after=0.001)
        return {"ok": True, "pong": True}

    client.ask = flaky_ask
    assert client.ask_with_retry({"op": "ping"}) == {"ok": True, "pong": True}
    assert len(calls) == 3

    calls.clear()
    with pytest.raises(ServiceOverloaded):
        client.ask_with_retry({"op": "ping"}, retries=1)
    assert len(calls) == 2
