"""Tests for the Q-format fixed-point substrate."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fixedpoint.qformat import (
    Fixed,
    FixedPointContext,
    FixedVector,
    QFormat,
    all_q_formats,
    required_int_bits,
)


def fx(value, fmt=None, ctx=None):
    fmt = fmt or QFormat(7, 24)
    ctx = ctx or FixedPointContext()
    return Fixed.from_float(value, fmt, ctx)


class TestQFormat:
    def test_bit_budget_enforced(self):
        with pytest.raises(ValueError):
            QFormat(10, 10)

    def test_resolution(self):
        assert QFormat(7, 24).resolution == pytest.approx(2**-24)

    def test_max_value(self):
        f = QFormat(7, 24)
        assert f.max_value == pytest.approx(128.0, rel=1e-6)

    def test_equality_and_hash(self):
        assert QFormat(7, 24) == QFormat(7, 24)
        assert QFormat(7, 24) != QFormat(8, 23)
        assert len({QFormat(7, 24), QFormat(7, 24)}) == 1

    def test_all_q_formats_sweep(self):
        formats = all_q_formats(1, 28)
        assert len(formats) == 28
        assert all(f.int_bits + f.frac_bits == 31 for f in formats)

    def test_required_int_bits(self):
        assert required_int_bits(0.5) == 0
        assert required_int_bits(1.0) == 1
        assert required_int_bits(100.0) == 7
        assert required_int_bits(0.0) == 0


class TestFixedArithmetic:
    @given(st.floats(min_value=-50, max_value=50),
           st.floats(min_value=-50, max_value=50))
    def test_add_matches_float(self, a, b):
        ctx = FixedPointContext()
        fmt = QFormat(7, 24)
        r = Fixed.from_float(a, fmt, ctx) + Fixed.from_float(b, fmt, ctx)
        if not ctx.failed:
            assert float(r) == pytest.approx(a + b, abs=1e-5)

    @given(st.floats(min_value=-10, max_value=10),
           st.floats(min_value=-10, max_value=10))
    def test_mul_matches_float(self, a, b):
        ctx = FixedPointContext()
        fmt = QFormat(7, 24)
        r = Fixed.from_float(a, fmt, ctx) * Fixed.from_float(b, fmt, ctx)
        if not ctx.failed:
            assert float(r) == pytest.approx(a * b, abs=1e-4)

    @given(st.floats(min_value=-50, max_value=50),
           st.floats(min_value=0.1, max_value=50))
    def test_div_matches_float(self, a, b):
        ctx = FixedPointContext()
        fmt = QFormat(7, 24)
        r = Fixed.from_float(a, fmt, ctx) / Fixed.from_float(b, fmt, ctx)
        if not ctx.failed:
            assert float(r) == pytest.approx(a / b, abs=1e-3)

    @given(st.floats(min_value=0.0, max_value=100.0))
    def test_sqrt_matches_float(self, a):
        r = fx(a).sqrt()
        assert float(r) == pytest.approx(math.sqrt(a), abs=2e-4)

    def test_overflow_saturates_and_records(self):
        ctx = FixedPointContext()
        fmt = QFormat(3, 28)  # max ~8
        a = Fixed.from_float(7.0, fmt, ctx)
        b = a + a
        assert ctx.overflow_events >= 1
        assert float(b) == pytest.approx(fmt.max_value, rel=1e-5)

    def test_near_zero_division_records_event(self):
        ctx = FixedPointContext()
        fmt = QFormat(7, 24)
        one = Fixed.from_float(1.0, fmt, ctx)
        tiny = Fixed(1, fmt, ctx)  # one LSB
        one / tiny
        assert ctx.div_by_near_zero_events == 1

    def test_sqrt_negative_records_event(self):
        ctx = FixedPointContext()
        v = Fixed.from_float(-1.0, QFormat(7, 24), ctx)
        assert float(v.sqrt()) == 0.0
        assert ctx.sqrt_negative_events == 1

    def test_mixed_formats_rejected(self):
        ctx = FixedPointContext()
        a = Fixed.from_float(1.0, QFormat(7, 24), ctx)
        b = Fixed.from_float(1.0, QFormat(8, 23), ctx)
        with pytest.raises(ValueError):
            a + b

    def test_comparisons(self):
        assert fx(1.0) < fx(2.0)
        assert fx(2.0) >= fx(2.0)
        assert fx(3.0) == fx(3.0)

    def test_negation_and_abs(self):
        assert float(-fx(1.5)) == pytest.approx(-1.5)
        assert float(abs(fx(-2.5))) == pytest.approx(2.5)

    def test_coercion_from_python_float(self):
        r = fx(2.0) * 3.0
        assert float(r) == pytest.approx(6.0, abs=1e-5)

    def test_recip_sqrt(self):
        r = fx(4.0).recip_sqrt()
        assert float(r) == pytest.approx(0.5, abs=1e-3)

    def test_context_failed_flag(self):
        ctx = FixedPointContext()
        assert not ctx.failed
        ctx.overflow_events = 1
        assert ctx.failed

    def test_narrow_fraction_loses_precision(self):
        """Few fractional bits -> visible quantization (Fig. 4's right side)."""
        coarse = QFormat(27, 4)
        ctx = FixedPointContext()
        v = Fixed.from_float(0.07, coarse, ctx)
        assert abs(float(v) - 0.07) > 0.005


class TestFixedVector:
    def test_dot_and_norm(self):
        ctx = FixedPointContext()
        fmt = QFormat(7, 24)
        v = FixedVector.from_floats([3.0, 4.0, 0.0], fmt, ctx)
        assert float(v.norm()) == pytest.approx(5.0, abs=1e-4)
        assert float(v.dot(v)) == pytest.approx(25.0, abs=1e-3)

    def test_cross(self):
        ctx = FixedPointContext()
        fmt = QFormat(7, 24)
        x = FixedVector.from_floats([1, 0, 0], fmt, ctx)
        y = FixedVector.from_floats([0, 1, 0], fmt, ctx)
        z = x.cross(y)
        assert z.to_floats() == pytest.approx([0.0, 0.0, 1.0], abs=1e-6)

    def test_add_sub_scale(self):
        ctx = FixedPointContext()
        fmt = QFormat(7, 24)
        a = FixedVector.from_floats([1, 2, 3], fmt, ctx)
        b = FixedVector.from_floats([4, 5, 6], fmt, ctx)
        assert (a + b).to_floats() == pytest.approx([5, 7, 9], abs=1e-5)
        assert (b - a).to_floats() == pytest.approx([3, 3, 3], abs=1e-5)
        s = Fixed.from_float(2.0, fmt, ctx)
        assert a.scale(s).to_floats() == pytest.approx([2, 4, 6], abs=1e-5)

    def test_indexing(self):
        ctx = FixedPointContext()
        fmt = QFormat(7, 24)
        v = FixedVector.from_floats([1, 2], fmt, ctx)
        v[0] = Fixed.from_float(9.0, fmt, ctx)
        assert float(v[0]) == pytest.approx(9.0)
        assert len(v) == 2
