"""Tests for the cache, memory-fit, and energy models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mcu.arch import M0PLUS, M33, M4, M7
from repro.mcu.cache import CACHE_OFF, CACHE_ON, CacheModel
from repro.mcu.energy import EnergyModel
from repro.mcu.memory import (
    Footprint,
    MemoryFitError,
    check_fit,
    image_buffer_bytes,
    require_fit,
)
from repro.mcu.ops import OpTrace
from repro.mcu.pipeline import CycleBreakdown, PipelineModel
from repro.scalar import F32


class TestCacheModel:
    def test_fitting_working_set_hits_high(self):
        cm = CacheModel(M7, CACHE_ON)
        assert cm.dmem_hit_rate(4000) > 0.95

    def test_oversized_working_set_hits_lower(self):
        cm = CacheModel(M7, CACHE_ON)
        small = cm.dmem_hit_rate(8 * 1024)
        big = cm.dmem_hit_rate(512 * 1024)
        assert big < small

    def test_disabled_cache_never_hits(self):
        cm = CacheModel(M7, CACHE_OFF)
        assert cm.dmem_hit_rate(100) == 0.0

    def test_no_dcache_on_m4(self):
        cm = CacheModel(M4, CACHE_ON)
        assert cm.dmem_hit_rate(100) == 0.0

    def test_m4_art_keeps_prefetch_when_disabled(self):
        cm = CacheModel(M4, CACHE_OFF)
        assert cm.ifetch_hit_rate(10000) > 0.0

    def test_m33_icache_disabled_means_zero(self):
        cm = CacheModel(M33, CACHE_OFF)
        assert cm.ifetch_hit_rate(10000) == 0.0

    @given(st.integers(min_value=0, max_value=10**7))
    def test_hit_rates_bounded(self, footprint):
        for arch in (M4, M33, M7):
            for cfg in (CACHE_ON, CACHE_OFF):
                cm = CacheModel(arch, cfg)
                assert 0.0 <= cm.ifetch_hit_rate(footprint) <= 1.0
                assert 0.0 <= cm.dmem_hit_rate(footprint) <= 1.0

    def test_stalls_monotone_in_accesses(self):
        cm = CacheModel(M7, CACHE_OFF)
        assert cm.dmem_stalls(1000, 64000) > cm.dmem_stalls(100, 64000)

    def test_activity_zero_when_disabled(self):
        assert CacheModel(M7, CACHE_OFF).activity(1000, 1000) == 0.0

    def test_activity_positive_when_enabled(self):
        assert CacheModel(M7, CACHE_ON).activity(1000, 1000) > 0.3


class TestMemoryFit:
    def test_small_kernel_fits_everything(self):
        fp = Footprint(flash_bytes=2000, data_bytes=512)
        for arch in (M0PLUS, M4, M33, M7):
            assert check_fit(fp, arch).fits

    def test_sift_class_footprint_only_fits_m7(self):
        from repro.perception.sift import scale_space_footprint_bytes

        fp = Footprint(flash_bytes=76000,
                       data_bytes=scale_space_footprint_bytes((160, 160)))
        assert not check_fit(fp, M4).fits
        assert not check_fit(fp, M33).fits
        assert check_fit(fp, M7).fits

    def test_require_fit_raises(self):
        fp = Footprint(flash_bytes=10 * 1024 * 1024, data_bytes=512)
        with pytest.raises(MemoryFitError):
            require_fit(fp, M4, "huge")

    def test_fit_report_utilization(self):
        fp = Footprint(flash_bytes=100 * 1024, data_bytes=32 * 1024)
        rep = check_fit(fp, M4)
        assert 0 < rep.flash_utilization < 1
        assert 0 < rep.sram_utilization < 1

    def test_image_buffer_bytes(self):
        assert image_buffer_bytes(160, 160) == 25600
        assert image_buffer_bytes(80, 80, bytes_per_px=4, copies=2) == 51200

    def test_stack_included_in_sram(self):
        fp = Footprint(flash_bytes=0, data_bytes=0, stack_bytes=8192)
        assert fp.sram_bytes == 8192


def _report(arch, trace, compute, ifetch=0.0, dmem=0.0, cache_activity=0.0):
    bd = CycleBreakdown(compute, ifetch, dmem)
    return EnergyModel(arch).report(trace, bd, cache_activity)


class TestEnergyModel:
    TRACE = OpTrace(fadd=500, fmul=500, load=800, store=200, ialu=400)

    def test_energy_is_power_times_latency(self):
        r = _report(M4, self.TRACE, compute=10000)
        assert r.energy_j == pytest.approx(r.avg_power_w * r.latency_s)

    def test_peak_at_least_average(self):
        for arch in (M0PLUS, M4, M33, M7):
            r = _report(arch, self.TRACE, compute=10000)
            assert r.peak_power_w >= r.avg_power_w

    def test_m33_most_energy_efficient(self):
        """The process-node headline: M33 wins on energy (paper S5)."""
        pms = {a.name: PipelineModel(a) for a in (M4, M33, M7)}
        ems = {a.name: EnergyModel(a) for a in (M4, M33, M7)}
        energies = {}
        for arch in (M4, M33, M7):
            bd = pms[arch.name].cycles(self.TRACE, F32, CACHE_ON, 8000, 4000)
            energies[arch.name] = ems[arch.name].report(self.TRACE, bd, 0.5).energy_j
        assert energies["m33"] < energies["m4"]
        assert energies["m33"] < energies["m7"]

    def test_stalled_core_draws_less_power(self):
        busy = _report(M7, self.TRACE, compute=10000, dmem=0)
        stalled = _report(M7, self.TRACE, compute=10000, dmem=30000)
        assert stalled.avg_power_w < busy.avg_power_w

    def test_cache_off_costs_more_energy_on_m7(self):
        """Stalls cut power but latency grows more: energy rises (Table IV)."""
        pm = PipelineModel(M7)
        em = EnergyModel(M7)
        on_bd = pm.cycles(self.TRACE, F32, CACHE_ON, 20000, 30000)
        off_bd = pm.cycles(self.TRACE, F32, CACHE_OFF, 20000, 30000)
        on = em.report(self.TRACE, on_bd, CacheModel(M7, CACHE_ON).activity(20000, 30000))
        off = em.report(self.TRACE, off_bd, CacheModel(M7, CACHE_OFF).activity(20000, 30000))
        assert off.energy_j > on.energy_j
        assert off.peak_power_w < on.peak_power_w  # cache burst power gone

    def test_m0plus_low_power_but_loses_energy(self):
        """Racing to idle: M0+ draws ~15 mW yet loses on energy (CS2)."""
        pm0, pm4 = PipelineModel(M0PLUS), PipelineModel(M4)
        em0, em4 = EnergyModel(M0PLUS), EnergyModel(M4)
        bd0 = pm0.cycles(self.TRACE, F32, CACHE_ON, 4000, 1000)
        bd4 = pm4.cycles(self.TRACE, F32, CACHE_ON, 4000, 1000)
        r0 = em0.report(self.TRACE, bd0, 0.0)
        r4 = em4.report(self.TRACE, bd4, 0.5)
        assert r0.avg_power_w < r4.avg_power_w
        assert r0.energy_j > r4.energy_j

    def test_unit_conversions(self):
        r = _report(M4, self.TRACE, compute=17000)  # 100 us at 170 MHz
        assert r.latency_us == pytest.approx(100.0)
        assert r.energy_uj == pytest.approx(r.energy_j * 1e6)
        assert r.peak_power_mw == pytest.approx(r.peak_power_w * 1e3)
