"""Tests for ``repro.backends``: the multi-ISA architecture registry.

The load-bearing guarantees, in order of importance:

1. **Golden byte-identity** — extracting the Cortex-M cost tables into
   the backend registry changed *where* the constants live, not *what*
   they price.  The sweep / fault-campaign / paper-table goldens in
   ``tests/goldens/`` were generated on the pre-refactor tree; the same
   commands must reproduce them byte-for-byte forever.
2. **RISC-V determinism** — campaigns spanning both ISA families keep
   the repo's byte-identical-across-``--jobs`` contract, and Tier-B
   generation actually samples both families.
3. The registry surface itself: ordering, typed ``ArchKeyError`` with a
   nearest-match suggestion, the deprecated ``ARCHS`` shim, the
   ``characterization_archs`` ISA filter, and the ``repro.api`` verbs.
4. The quantized TinyML pack prices the way the paper's deployment
   story says it should: int8 wins big on soft-float cores and loses its
   edge on an FPU core.
"""

import json
import warnings
from pathlib import Path

import pytest

import repro.mcu.arch as arch_mod
from repro.backends import (
    ArchKeyError,
    arch_names,
    backend_for,
    backend_names,
    characterization_archs,
    get_arch,
    get_backend,
    list_backends,
)
from repro.core import registry
from repro.core.config import HarnessConfig
from repro.core.harness import Harness
from repro.mcu.cache import CACHE_ON
from repro.scenarios import ScenarioSet, ScenarioSpec, generate_scenarios, run_scenarios

GOLDENS = Path(__file__).parent / "goldens"
CONFIG = HarnessConfig(reps=1, warmup_reps=0)

#: Registration order is part of the contract: Cortex-M first (the
#: paper's boards), then the RV32 family, each in its backend's order.
ALL_ARCHS = ["m0plus", "m4", "m33", "m7", "rv32imc", "rv32imafc", "rv32ec"]


# ------------------------------------------------------------ the registry


def test_registry_orders_backends_and_cores():
    assert backend_names() == ["cortex-m", "riscv"]
    assert arch_names() == ALL_ARCHS
    for name in ALL_ARCHS:
        assert get_arch(name).name == name


def test_cortex_core_constants_resolve_to_registry_objects():
    # The legacy module constants are the registry's objects, not copies:
    # identity is what keeps pre-refactor pricing byte-identical.
    assert arch_mod.M4 is get_arch("m4")
    assert arch_mod.M0PLUS is get_arch("m0plus")
    assert arch_mod.M33 is get_arch("m33")
    assert arch_mod.M7 is get_arch("m7")


def test_characterization_set_filters_by_isa():
    default = [a.name for a in characterization_archs()]
    assert default == ["m4", "m33", "m7", "rv32imc", "rv32imafc", "rv32ec"]
    cortex = [a.name for a in characterization_archs(isa="cortex-m")]
    assert cortex == ["m4", "m33", "m7"]
    riscv = [a.name for a in characterization_archs(isa="riscv")]
    assert riscv == ["rv32imc", "rv32imafc", "rv32ec"]
    with pytest.raises(KeyError, match="unknown backend"):
        characterization_archs(isa="mips")


def test_characterization_shim_stays_pinned_to_the_paper_trio():
    # The paper-table code reads this name; new ISAs must not leak in.
    assert tuple(a.name for a in arch_mod.CHARACTERIZATION_ARCHS) == (
        "m4", "m33", "m7",
    )


def test_backend_for_resolves_derated_variants():
    base = get_arch("m33")
    derated = base.derated(name="m33+brownout:0.5", cpi_scale=2.0)
    assert backend_for(derated) is get_backend("cortex-m")
    assert backend_for("rv32imc+dvfs:0.4") is get_backend("riscv")
    assert backend_for(get_arch("rv32ec")) is get_backend("riscv")


def test_unknown_arch_raises_typed_error_with_suggestion():
    with pytest.raises(ArchKeyError) as excinfo:
        get_arch("rv32imf")
    err = excinfo.value
    assert isinstance(err, KeyError)
    assert err.requested == "rv32imf"
    assert err.suggestion == "rv32imafc"
    assert "did you mean 'rv32imafc'" in str(err)

    with pytest.raises(ArchKeyError, match="did you mean 'm4'"):
        get_arch("m44")
    # No plausible match: the error still lists what exists.
    with pytest.raises(ArchKeyError, match="available") as excinfo:
        get_arch("xtensa-lx7")
    assert excinfo.value.suggestion is None
    # The shim re-exported from the legacy module is the same class.
    assert arch_mod.ArchKeyError is ArchKeyError


def test_archs_dict_shim_warns_once_and_covers_the_registry():
    arch_mod._warned_deprecated.discard("ARCHS")
    with pytest.warns(DeprecationWarning, match="ARCHS is deprecated"):
        legacy = arch_mod.ARCHS
    assert list(legacy) == ALL_ARCHS
    assert legacy["m4"] is get_arch("m4")
    # Second access is silent: the warning fires once per process.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert list(arch_mod.ARCHS) == ALL_ARCHS


def test_riscv_specs_model_the_family():
    imc, imafc, ec = (get_arch(n) for n in ("rv32imc", "rv32imafc", "rv32ec"))
    assert not imc.fpu.single and not imc.fpu.double
    assert imafc.fpu.single and not imafc.fpu.double
    assert not ec.fpu.single
    assert imc.has_hw_divide and imafc.has_hw_divide
    assert not ec.has_hw_divide  # RV32E without the M extension
    assert all(a.isa.startswith("RV32") for a in (imc, imafc, ec))
    assert ec.clock_hz < imc.clock_hz < 200e6


def test_list_backends_and_api_verbs():
    import repro.api as api

    rows = list_backends()
    assert [r["backend"] for r in rows] == ["cortex-m", "riscv"]
    assert rows[0]["archs"] == ["m0plus", "m4", "m33", "m7"]
    assert rows[1]["archs"] == ["rv32imc", "rv32imafc", "rv32ec"]
    assert all(r["description"] for r in rows)
    assert api.list_backends() == rows
    assert api.get_arch("rv32imafc") is get_arch("rv32imafc")
    with pytest.raises(ArchKeyError):
        api.get_arch("rv32imf")


def test_backends_cli_lists_and_shows(capsys):
    from repro.cli import main

    assert main(["backends", "list"]) == 0
    out = capsys.readouterr().out
    assert "cortex-m" in out and "riscv" in out
    assert "rv32imafc" in out

    assert main(["backends", "show", "rv32imafc"]) == 0
    out = capsys.readouterr().out
    assert "RV32IMAFC" in out and "riscv" in out


# -------------------------------------------- pre-refactor golden identity


def test_cortexm_sweep_matches_prerefactor_golden(tmp_path):
    from repro.cli import main

    out = tmp_path / "sweep.json"
    assert main([
        "sweep", "--kernels", "mahony,p3p",
        "--archs", "m0plus,m4,m33,m7",
        "--reps", "1", "--jobs", "1", "--no-cache",
        "--out", str(out),
    ]) == 0
    assert out.read_bytes() == (GOLDENS / "cortexm_sweep.json").read_bytes()


def test_cortexm_faults_match_prerefactor_golden(tmp_path):
    from repro.cli import main

    out = tmp_path / "faults.json"
    assert main([
        "faults", "--fault", "brownout", "--mission", "hover",
        "--kernels", "mahony", "--severities", "0.5,1.0",
        "--seed", "3", "--jobs", "1", "--no-cache",
        "--out", str(out),
    ]) == 0
    assert out.read_bytes() == (GOLDENS / "cortexm_faults.json").read_bytes()


def test_cross_isa_sweep_matches_committed_golden(tmp_path):
    # The CI smoke job's contract, kept runnable locally: one sweep
    # spanning both backends reproduces the committed golden (CI runs it
    # with --jobs 2; engine results are identical across jobs counts).
    from repro.cli import main

    out = tmp_path / "cross.json"
    assert main([
        "sweep", "--kernels", "mahony,p3p", "--archs", "m4,rv32imafc",
        "--reps", "1", "--jobs", "1", "--no-cache", "--out", str(out),
    ]) == 0
    assert out.read_bytes() == (GOLDENS / "cross_isa_sweep.json").read_bytes()


def test_paper_tables_match_prerefactor_goldens():
    from repro.analysis.tables import (
        render_table3,
        render_table5,
        table3_static,
        table5_architectures,
    )

    t3 = render_table3(table3_static(["mahony", "p3p", "fastbrief"])) + "\n"
    assert t3 == (GOLDENS / "table3_static.txt").read_text()
    t5 = render_table5(table5_architectures()) + "\n"
    assert t5 == (GOLDENS / "table5_archs.txt").read_text()


# ------------------------------------------------- cross-ISA determinism


def _tiny_hover():
    return {
        "kind": "hover", "name": "h", "duration_s": 0.05,
        "control_rate_hz": 500.0,
        "gusts": [[0.01, 0.02, 0.02, 0.0, 0.01]],
    }


def _cross_isa_set() -> ScenarioSet:
    """A handmade set spanning both ISA families, fast enough for CI."""
    return ScenarioSet(
        scenarios=(
            ScenarioSpec(name="cm-hover", tier="b", arch="m4",
                         mission=_tiny_hover(), kernels=("mahony",),
                         scalar="f32", seed=11),
            ScenarioSpec(name="rv-hover", tier="b", arch="rv32imafc",
                         mission=_tiny_hover(), kernels=("mahony",),
                         scalar="f32", seed=12),
            ScenarioSpec(name="rv-soft", tier="b", arch="rv32imc",
                         mission=None, kernels=("mahony", "fly-lqr"),
                         scalar="q7.24", seed=13),
        ),
        tier="b", seed=2, generator="handmade",
    ).validated()


def _canonical(report: dict) -> str:
    return json.dumps(report, indent=2, sort_keys=True)


def test_cross_isa_report_is_byte_identical_across_jobs():
    sset = _cross_isa_set()
    serial = run_scenarios(sset, jobs=1)
    pooled = run_scenarios(sset, jobs=2)
    assert _canonical(serial) == _canonical(pooled)
    assert _canonical(run_scenarios(sset, jobs=1)) == _canonical(serial)

    assert serial["format_version"] == 2
    isas = {r["isa"] for r in serial["kernel_grid"]}
    assert isas == {"cortex-m", "riscv"}
    by_isa = serial["pareto"]["kernel_by_isa"]
    assert set(by_isa) == {"cortex-m", "riscv"}
    assert all(front for front in by_isa.values())


def test_tier_b_generation_samples_both_isas_and_quantized_kernels():
    sset = generate_scenarios(tier="b", count=60, seed=7)
    families = {backend_for(s.arch).name for s in sset.scenarios}
    assert families == {"cortex-m", "riscv"}
    kernels = {k for s in sset.scenarios for k in s.kernels}
    assert kernels & {"proximity-net-int8", "proximity-net-int16"}
    scalars = {s.scalar for s in sset.scenarios}
    assert scalars & {"q7.24", "q15.16"}
    # Content addressing survives the new pools: same (tier, count, seed)
    # is the same set, byte for byte.
    again = generate_scenarios(tier="b", count=60, seed=7)
    assert again.to_json() == sset.to_json()
    assert again.address == sset.address


# ------------------------------------------------ quantized TinyML pack


def test_quantized_problems_register_and_validate():
    # int8 fits and validates on the 64 KB-SRAM E31-class core; the
    # int16 activation buffers need a paper-class board (m33).
    for name, bits, arch in (
        ("proximity-net-int8", 8, "rv32imc"),
        ("proximity-net-int16", 16, "m33"),
    ):
        assert name in registry.names()
        problem = registry.create(name)
        assert problem.bits == bits
        result = Harness(get_arch(arch), CONFIG).run(problem, CACHE_ON)
        assert result.all_valid
        assert result.unit_latency_us > 0


def test_int16_activations_overflow_the_small_core():
    result = Harness(get_arch("rv32imc"), CONFIG).run(
        registry.create("proximity-net-int16"), CACHE_ON
    )
    assert not result.fits
    assert "SRAM" in result.skip_reason


def test_int8_wins_on_softfloat_cores_not_on_fpu_cores():
    def _latency(arch_name: str, kernel: str) -> float:
        result = Harness(get_arch(arch_name), CONFIG).run(
            registry.create(kernel), CACHE_ON
        )
        return result.unit_latency_us

    rv_float = _latency("rv32imc", "proximity-net")
    rv_int8 = _latency("rv32imc", "proximity-net-int8")
    m4_float = _latency("m4", "proximity-net")
    m4_int8 = _latency("m4", "proximity-net-int8")

    # On the soft-float E31-class core, int8 is a large win.
    assert rv_int8 < rv_float / 2
    # On the FPU core the requantize tax eats the advantage: the speedup
    # ratio is far smaller than on the soft-float core (the paper's
    # quantize-for-the-small-cores deployment story).
    assert (rv_float / rv_int8) > 2 * (m4_float / m4_int8)


def test_quantized_footprint_tracks_activation_width():
    int8 = registry.create("proximity-net-int8").footprint()
    int16 = registry.create("proximity-net-int16").footprint()
    flt = registry.create("proximity-net").footprint()
    # Weights stay int8-packed on both paths (and the float problem
    # already models int8 deployment); only the activations widen.
    assert int8.flash_bytes == int16.flash_bytes == flt.flash_bytes
    assert int8.sram_bytes <= flt.sram_bytes
    assert int8.sram_bytes < int16.sram_bytes < 2 * int8.sram_bytes
