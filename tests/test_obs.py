"""Tests for the observability layer (`repro.obs`).

Covers the contract the layer makes with the rest of the suite:

* span nesting, depth, and self-time accounting on a fake clock,
* zero-overhead disabled tracing (one shared no-op object, nothing
  recorded through a full engine sweep),
* Chrome trace-event export round-trips ``json.loads`` with only valid
  event types,
* metric aggregation is identical for ``--jobs 1`` and ``--jobs 4``,
* enabling observation never changes results (sweep and campaign output
  is byte-identical with tracing on),
* mission traces are deterministic (byte-identical across runs),
* the ``repro trace`` / ``--trace`` / ``--metrics-out`` CLI surface.
"""

import json

import pytest

import repro.obs as obs
from repro.core.config import HarnessConfig
from repro.core.experiment import SweepSpec
from repro.engine import EngineOptions, run_sweep_engine
from repro.mcu.arch import M4, M33
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracer import _NOOP_SPAN, Tracer

KERNELS = ["mahony", "p3p"]
OVERRIDES = {"mahony": {"n_samples": 40}}
FAST = HarnessConfig(reps=2, warmup_reps=1)


def small_spec():
    return SweepSpec(
        kernels=list(KERNELS),
        archs=[M4, M33],
        config=FAST,
        overrides=dict(OVERRIDES),
    )


@pytest.fixture(autouse=True)
def _restore_defaults():
    """Every test leaves the process-wide obs singletons disabled."""
    yield
    obs.unobserve()


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestTracer:
    def test_span_nesting_depth_and_self_time(self):
        clock = FakeClock()
        tracer = Tracer(enabled=True, clock=clock)
        with tracer.span("parent", cat="t"):
            clock.t = 1.0
            assert tracer.depth == 1
            with tracer.span("child", cat="t"):
                clock.t = 3.0
                assert tracer.depth == 2
            clock.t = 5.0
        assert tracer.depth == 0
        child, parent = tracer.spans  # children close (record) first
        assert child.name == "child" and parent.name == "parent"
        assert child.depth == 1 and parent.depth == 0
        assert child.dur_s == pytest.approx(2.0)
        assert child.self_s == pytest.approx(2.0)
        assert parent.dur_s == pytest.approx(5.0)
        assert parent.self_s == pytest.approx(3.0)  # 5.0 minus the child

    def test_span_args_and_set(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with tracer.span("s", cat="t", kernel="p3p") as span:
            span.set(extra=7)
        assert tracer.spans[0].args == {"kernel": "p3p", "extra": 7}

    def test_add_span_uses_explicit_sim_times(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        tracer.add_span("step", 0.25, 0.75, cat="mission",
                        track="mission:hover", self_s=0.1, step=3)
        (span,) = tracer.spans
        assert span.t0_s == 0.25 and span.dur_s == pytest.approx(0.5)
        assert span.self_s == 0.1 and span.track == "mission:hover"

    def test_seq_is_monotone_record_order(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [s.seq for s in tracer.spans] == [0, 1, 2]

    def test_exceptions_propagate_and_still_record(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert tracer.by_name("boom") and tracer.depth == 0


class TestDisabledIsFree:
    def test_disabled_span_is_one_shared_object(self):
        tracer = Tracer(enabled=False)
        spans = [tracer.span("a"), tracer.span("b", cat="x", k=1)]
        assert spans[0] is spans[1] is _NOOP_SPAN
        with spans[0]:
            pass
        assert tracer.spans == [] and tracer.instants == []

    def test_default_tracer_is_disabled(self):
        assert obs.get_tracer() is obs.NULL_TRACER
        assert not obs.get_tracer().enabled
        assert not obs.get_metrics().enabled

    def test_sweep_with_defaults_records_nothing(self):
        """The solve/price hot path adds no events while obs is off."""
        tracer, metrics = obs.get_tracer(), obs.get_metrics()
        before = (len(tracer.spans), len(tracer.instants), len(metrics))
        run_sweep_engine(small_spec())
        assert (len(tracer.spans), len(tracer.instants), len(metrics)) == before
        assert tracer.spans == []

    def test_disabled_recording_methods_are_noops(self):
        tracer = Tracer(enabled=False)
        tracer.add_span("x", 0.0, 1.0)
        tracer.instant("x")
        tracer.counter("x", 1.0)
        assert not tracer.spans and not tracer.instants and not tracer.counters
        registry = MetricsRegistry(enabled=False)
        registry.inc("c")
        registry.set_gauge("g", 1)
        registry.observe("h", 1.0)
        assert len(registry) == 0


class TestMetrics:
    def test_counter_gauge_histogram(self):
        m = MetricsRegistry()
        m.inc("hits")
        m.inc("hits", 2)
        m.set_gauge("jobs", 4)
        for v in (0.5, 1.5, 2.0):
            m.observe("lat", v)
        assert m.counter("hits") == 3
        assert m.gauge("jobs") == 4
        h = m.histogram("lat")
        assert h.count == 3 and h.mean == pytest.approx(4.0 / 3)
        assert h.min == 0.5 and h.max == 2.0

    def test_histogram_merge_and_roundtrip(self):
        a, b = Histogram(), Histogram()
        for v in (0.1, 10.0):
            a.observe(v)
        b.observe(1.0)
        a.merge(b)
        assert a.count == 3 and a.sum == pytest.approx(11.1)
        again = Histogram.from_dict(a.as_dict())
        assert again.as_dict() == a.as_dict()

    def test_registry_merge_dict_roundtrip(self):
        m = MetricsRegistry()
        m.inc("c", 2)
        m.set_gauge("g", 7)
        m.observe("h", 3.0)
        other = MetricsRegistry.from_dict(m.as_dict())
        other.merge(m)
        assert other.counter("c") == 4
        assert other.histogram("h").count == 2

    def test_as_dict_sections_sorted(self):
        m = MetricsRegistry()
        for name in ("z", "a", "k"):
            m.inc(name)
        assert list(m.as_dict()["counters"]) == ["a", "k", "z"]


class TestChromeExport:
    def test_round_trips_json_loads_with_valid_events(self, tmp_path):
        tracer, _ = obs.observe()
        run_sweep_engine(small_spec())
        doc = obs.to_chrome_trace(tracer)
        parsed = json.loads(json.dumps(doc))
        events = parsed["traceEvents"]
        assert events, "a traced sweep must produce events"
        assert {e["ph"] for e in events} <= {"M", "X", "i", "C"}
        for e in events:
            if e["ph"] == "X":
                assert isinstance(e["ts"], (int, float))
                assert e["dur"] >= 0
                assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
        path = obs.save_chrome_trace(tracer, tmp_path / "t.json")
        assert json.loads(path.read_text())["traceEvents"]

    def test_phase_report_lists_hottest_first(self):
        clock = FakeClock()
        tracer = Tracer(enabled=True, clock=clock)
        with tracer.span("slow"):
            clock.t = 2.0
        with tracer.span("fast"):
            clock.t = 2.5
        report = obs.phase_report(tracer)
        assert report.index("slow") < report.index("fast")
        assert "2 spans" in report

    def test_metrics_jsonl_one_sorted_line_per_metric(self, tmp_path):
        m = MetricsRegistry()
        m.inc("b")
        m.inc("a")
        m.observe("h", 1.0)
        path = obs.save_metrics_jsonl(m, tmp_path / "m.jsonl")
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["metric"] for l in lines] == ["a", "b", "h"]


def _strip_nondeterministic(metrics_dict):
    """Drop wall-clock histograms and config gauges before comparison."""
    d = json.loads(json.dumps(metrics_dict))
    d["histograms"] = {
        k: v for k, v in d["histograms"].items() if not k.endswith("wall_s")
    }
    d.pop("gauges", None)
    return d


class TestDeterminism:
    def test_sweep_results_identical_with_tracing_on(self, tmp_path):
        plain = run_sweep_engine(small_spec())
        obs.observe()
        traced = run_sweep_engine(small_spec())
        assert traced.results == plain.results

    def test_sweep_metrics_identical_jobs_1_vs_4(self, tmp_path):
        dumps = []
        for jobs in (1, 4):
            _, metrics = obs.observe()
            run_sweep_engine(
                small_spec(),
                options=EngineOptions(jobs=jobs, cache_dir=tmp_path / str(jobs)),
            )
            dumps.append(_strip_nondeterministic(metrics.as_dict()))
            obs.unobserve()
        assert dumps[0] == dumps[1]

    def test_campaign_metrics_identical_jobs_1_vs_4(self):
        from repro.faults import FaultCampaignSpec, run_campaign

        spec = FaultCampaignSpec(
            fault="brownout", severities=(0.5,), missions=("hover",), seed=3
        )
        dumps, grids = [], []
        for jobs in (1, 4):
            _, metrics = obs.observe()
            out = run_campaign(spec, jobs=jobs)
            dumps.append(_strip_nondeterministic(metrics.as_dict()))
            grids.append(out.mission_grid)
            obs.unobserve()
        assert dumps[0] == dumps[1]
        assert grids[0] == grids[1]

    def test_mission_trace_bytes_identical_across_runs(self):
        from repro.closedloop import FlappingWingRunner, HoverMission
        from repro.mcu.arch import get_arch

        blobs = []
        for _ in range(2):
            tracer, _ = obs.observe()
            FlappingWingRunner(arch=get_arch("m33")).run(HoverMission())
            sim_only = [
                e for e in obs.to_chrome_trace(tracer)["traceEvents"]
                if e["ph"] != "M"
            ]
            blobs.append(json.dumps(sim_only, sort_keys=True))
            obs.unobserve()
        assert blobs[0] == blobs[1]

    def test_mission_result_identical_with_tracing_on(self):
        from repro.closedloop import StriderRunner, SteeringCourse
        from repro.mcu.arch import get_arch

        plain = StriderRunner(arch=get_arch("m33")).run(SteeringCourse())
        obs.observe()
        traced = StriderRunner(arch=get_arch("m33")).run(SteeringCourse())
        assert traced == plain


class TestCli:
    def test_trace_mission_prints_phase_report(self, capsys):
        from repro.cli import main

        assert main(["trace", "mission", "hover"]) == 0
        out = capsys.readouterr().out
        assert "phase report" in out
        assert "mission.control" in out and "mission.estimate" in out

    def test_trace_sweep_writes_valid_chrome_trace(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "sweep.trace.json"
        cache = tmp_path / "cache"
        argv = ["trace", "sweep", "--kernels", "mahony", "--archs", "m33",
                "--cache-dir", str(cache), "--trace", str(trace)]
        assert main(argv) == 0
        # Second run hits the warm trace cache and must still export.
        assert main(argv) == 0
        doc = json.loads(trace.read_text())
        names = {e.get("name") for e in doc["traceEvents"]}
        assert "engine.sweep" in names
        assert "engine.cache_hit" in names  # the warm-cache run
        assert "phase report" in capsys.readouterr().out

    def test_sweep_trace_flag_leaves_output_identical(self, tmp_path, capsys):
        from repro.cli import main

        base = ["sweep", "--kernels", "mahony", "--archs", "m33",
                "--out", str(tmp_path / "r.json")]
        assert main(base) == 0
        plain = (tmp_path / "r.json").read_bytes()
        assert main(base + ["--trace", str(tmp_path / "t.json"),
                            "--metrics-out", str(tmp_path / "m.jsonl")]) == 0
        assert (tmp_path / "r.json").read_bytes() == plain
        assert json.loads((tmp_path / "t.json").read_text())["traceEvents"]
        assert (tmp_path / "m.jsonl").read_text().strip()

    def test_mission_metrics_out(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "m.jsonl"
        assert main(["mission", "steer", "--metrics-out", str(path)]) == 0
        metrics = {json.loads(l)["metric"] for l in path.read_text().splitlines()}
        assert "mission.steps" in metrics and "mission.runs" in metrics
