"""Tests for the attitude-estimation kernels."""

import numpy as np
import pytest

from repro.attitude.filters import Fourati, Madgwick, Mahony
from repro.attitude.scalarmath import ScalarMath
from repro.datasets import imu
from repro.fixedpoint.qformat import FixedPointContext
from repro.mcu.ops import OpCounter
from repro.scalar import F32, parse_scalar, q


def run_filter(filt, dataset="bee-hover", use_mag=False, n=200, seed=0):
    seq = imu.load(dataset, n=n, seed=seed)
    c = OpCounter()
    errors = []
    for i in range(len(seq)):
        mag = seq.mag[i] if use_mag else None
        filt.update(seq.gyro[i], seq.accel[i], mag, seq.dt, c)
        errors.append(imu.quat_angle_deg(np.array(filt.quaternion()), seq.truth[i]))
    return np.array(errors), c


class TestFloatFilters:
    @pytest.mark.parametrize("filter_cls", [Mahony, Madgwick])
    @pytest.mark.parametrize("dataset", ["bee-hover", "strider-straight"])
    def test_imu_filters_converge(self, filter_cls, dataset):
        errors, _ = run_filter(filter_cls(), dataset=dataset)
        assert errors[len(errors) // 2 :].mean() < 2.5

    @pytest.mark.parametrize("filter_cls", [Mahony, Madgwick, Fourati])
    def test_marg_filters_converge(self, filter_cls):
        errors, _ = run_filter(filter_cls(), use_mag=True)
        assert errors[len(errors) // 2 :].mean() < 2.5

    def test_fourati_requires_magnetometer(self):
        f = Fourati()
        with pytest.raises(ValueError):
            f.update([0, 0, 0], [0, 0, 1], None, 0.001, OpCounter())

    def test_quaternion_stays_normalized(self):
        f = Madgwick()
        run_filter(f, dataset="strider-steer")
        assert f.quaternion_norm() == pytest.approx(1.0, abs=1e-6)

    def test_marg_costs_more_than_imu(self):
        """Upgrading to MARG adds only a modest latency increase (paper)."""
        _, c_imu = run_filter(Mahony(), use_mag=False)
        _, c_marg = run_filter(Mahony(), use_mag=True)
        assert c_imu.trace.total < c_marg.trace.total < 3 * c_imu.trace.total

    def test_fourati_heavier_than_mahony(self):
        """Fourati's LM gain makes it the most expensive filter (Table III)."""
        _, c_m = run_filter(Mahony(), use_mag=True)
        _, c_f = run_filter(Fourati(), use_mag=True)
        assert c_f.trace.total > c_m.trace.total

    def test_reset_restores_identity(self):
        f = Mahony()
        run_filter(f, n=20)
        f.reset()
        assert f.quaternion() == pytest.approx([1.0, 0.0, 0.0, 0.0])

    def test_zero_accel_does_not_crash(self):
        f = Mahony()
        f.update([0.1, 0, 0], [0, 0, 0], None, 0.001, OpCounter())
        assert np.isfinite(f.quaternion()).all()


class TestFixedPointFilters:
    def test_reasonable_format_tracks(self):
        f = Mahony(scalar=q(7, 24))
        errors, _ = run_filter(f, dataset="bee-hover")
        assert errors[len(errors) // 2 :].mean() < 2.5
        assert not f.ctx.failed

    def test_narrow_integer_bits_overflow(self):
        """Fig. 4's left edge: too little dynamic range -> overflow events."""
        f = Mahony(scalar=q(2, 29))
        run_filter(f, dataset="strider-steer")
        assert f.ctx.overflow_events > 0

    def test_narrow_fraction_loses_accuracy(self):
        """Fig. 4's right edge: too little resolution -> attitude failure."""
        f = Mahony(scalar=q(22, 9))
        errors, _ = run_filter(f, dataset="bee-hover")
        assert errors[len(errors) // 2 :].mean() > 2.5

    def test_feasible_window_exists(self):
        """Between the two failure cliffs a working band exists."""
        feasible = []
        for int_bits in (4, 7, 10, 13):
            f = Madgwick(scalar=q(int_bits, 31 - int_bits))
            errors, _ = run_filter(f, dataset="strider-straight", n=150)
            ok = (not f.ctx.failed) and errors[75:].mean() < 2.5
            feasible.append(ok)
        assert any(feasible)

    def test_fixed_context_attached(self):
        f = Mahony(scalar=q(7, 24))
        assert isinstance(f.ctx, FixedPointContext)

    def test_float_filter_has_no_fixed_context(self):
        assert Mahony(scalar=F32).ctx is None


class TestScalarMath:
    def test_const_float(self):
        m = ScalarMath(F32)
        assert m.const(1.5) == 1.5

    def test_const_fixed(self):
        m = ScalarMath(q(7, 24))
        assert float(m.const(1.5)) == pytest.approx(1.5, abs=1e-6)

    def test_sqrt_paths(self):
        assert ScalarMath(F32).sqrt(4.0) == pytest.approx(2.0)
        assert float(ScalarMath(q(7, 24)).sqrt(ScalarMath(q(7, 24)).const(4.0))) == pytest.approx(2.0, abs=1e-3)

    def test_sqrt_of_negative_float_is_zero(self):
        assert ScalarMath(F32).sqrt(-1.0) == 0.0

    def test_near_zero_detection(self):
        m = ScalarMath(F32)
        assert m.near_zero(1e-12)
        assert not m.near_zero(0.5)

    def test_divide_guard(self):
        m = ScalarMath(F32)
        assert m.divide(1.0, 0.0) == 0.0
        assert m.divide(6.0, 2.0) == 3.0

    def test_vector_conversion(self):
        m = ScalarMath(q(7, 24))
        v = m.vector([1.0, -2.0, 0.5])
        assert m.to_floats(v) == pytest.approx([1.0, -2.0, 0.5], abs=1e-6)


class TestAttitudeProblems:
    def test_problem_validates_on_all_datasets(self):
        from repro.core import registry

        for dataset in ("bee-hover", "strider-straight", "strider-steer"):
            p = registry.create("madgwick", dataset=dataset, n_samples=150)
            p.ensure_setup()
            result = p.solve(OpCounter())
            assert p.validate(result)

    def test_failure_events_reported(self):
        from repro.core import registry

        p = registry.create("mahony", scalar=q(2, 29), dataset="strider-steer",
                            n_samples=150)
        p.ensure_setup()
        p.solve(OpCounter())
        events = p.failure_events()
        assert events["overflow"] > 0

    def test_work_units_equals_sequence_length(self):
        from repro.core import registry

        p = registry.create("fourati", n_samples=123)
        p.ensure_setup()
        assert p.work_units == 123

    def test_flop_estimate_positive(self):
        from repro.core import registry

        p = registry.create("mahony", n_samples=100)
        p.ensure_setup()
        assert p.flop_estimate() > 0
