"""Tests for the static code model, the perception front end, and the CLI."""

import numpy as np
import pytest

from repro.datasets import images
from repro.mcu.arch import M0PLUS, M4, M33, M7
from repro.mcu.ops import OpCounter
from repro.mcu.static import CODE_BLOCKS, StaticMix, compose, static_profile
from repro.perception.frontend import match_frames, register_frames


class TestStaticModel:
    def test_compose_adds_blocks(self):
        a = CODE_BLOCKS["gaussian_blur"]
        b = CODE_BLOCKS["fast_detector"]
        total = compose(("gaussian_blur", "fast_detector"))
        assert total.flash_bytes == a.flash_bytes + b.flash_bytes
        assert total.f == a.f + b.f

    def test_compose_with_repeats(self):
        single = compose(("dense_matmul",))
        double = compose(("dense_matmul",), repeat={"dense_matmul": 2})
        assert double.f == 2 * single.f

    def test_unknown_block_raises(self):
        with pytest.raises(KeyError):
            compose(("warp_drive",))

    def test_mix_arithmetic(self):
        m = StaticMix(100, 1, 2, 3, 4)
        s = m + m
        assert (s.flash_bytes, s.f, s.i, s.m, s.b) == (200, 2, 4, 6, 8)
        assert m.scaled(3.0).f == 3
        assert m.total_instructions == 10

    def test_profile_deterministic(self):
        base = compose(("svd", "harness_runtime"))
        p1 = static_profile("5pt", base, M4)
        p2 = static_profile("5pt", base, M4)
        assert p1 == p2

    def test_profile_differs_per_kernel(self):
        base = compose(("svd",))
        assert static_profile("5pt", base, M4) != static_profile("8pt", base, M4)

    def test_m7_emits_fewer_branches(self):
        base = compose(("ransac_loop", "grobner_5pt"))
        m4 = static_profile("rel-lo-ransac", base, M4)
        m7 = static_profile("rel-lo-ransac", base, M7)
        assert m7.b < m4.b

    def test_m0plus_soft_float_shifts_mix(self):
        """Without an FPU, float code compiles into int/mem/branch."""
        base = compose(("quat_update", "marg_correction"))
        m0 = static_profile("mahony", base, M0PLUS)
        m4 = static_profile("mahony", base, M4)
        assert m0.f == 0
        assert m0.i > m4.i

    def test_flash_nearly_identical_across_cores(self):
        """The paper's note: flash differences between cores are minor."""
        base = compose(("ekf_predict", "ekf_update"))
        sizes = [static_profile("fly-ekf (sync)", base, a).flash_bytes
                 for a in (M4, M33, M7)]
        assert max(sizes) / min(sizes) < 1.02


class TestFrontend:
    PAIR = images.flow_pair("midd", shape=(160, 160), displacement=(4.0, -6.0),
                            noise_std=1.0, seed=2)

    def test_matching_finds_correspondences(self):
        matches = match_frames(OpCounter(), self.PAIR["frame0"],
                               self.PAIR["frame1"])
        assert matches.n >= 6
        # The per-match displacement should cluster around the truth.
        deltas = matches.points1 - matches.points0
        med = np.median(deltas, axis=0)
        assert med == pytest.approx([4.0, -6.0], abs=1.5)

    def test_registration_recovers_translation(self):
        result = register_frames(OpCounter(), self.PAIR["frame0"],
                                 self.PAIR["frame1"])
        assert result.homography is not None
        assert result.n_inliers >= 4
        assert result.translation_px == pytest.approx([4.0, -6.0], abs=1.0)

    def test_identical_frames_zero_translation(self):
        frame = images.load("midd", shape=(160, 160), seed=5)
        result = register_frames(OpCounter(), frame, frame)
        assert result.translation_px == pytest.approx([0.0, 0.0], abs=0.5)

    def test_featureless_frames_fail_gracefully(self):
        flat = np.full((160, 160), 100, dtype=np.uint8)
        result = register_frames(OpCounter(), flat, flat)
        assert result.homography is None
        assert result.n_matches < 4

    def test_ops_recorded(self):
        c = OpCounter()
        register_frames(c, self.PAIR["frame0"], self.PAIR["frame1"])
        assert c.trace.total > 100_000  # detection dominates


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fastbrief" in out and "bee-smac" in out

    def test_run_kernel(self, capsys):
        from repro.cli import main

        assert main(["run", "up2p", "--arch", "m33", "--reps", "1",
                     "--warmup", "0"]) == 0
        out = capsys.readouterr().out
        assert "latency" in out and "Cortex-M33" in out

    def test_run_fixed_point(self, capsys):
        from repro.cli import main

        code = main(["run", "mahony", "--arch", "m0plus", "--scalar", "q7.24",
                     "--reps", "1", "--warmup", "0"])
        assert code == 0
        assert "q7.24" in capsys.readouterr().out

    def test_run_memory_skip(self, capsys):
        from repro.cli import main

        assert main(["run", "sift", "--arch", "m4", "--reps", "1",
                     "--warmup", "0"]) == 1
        assert "does not fit" in capsys.readouterr().out

    def test_sweep_with_csv_out(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.csv"
        assert main(["sweep", "--kernels", "up2p", "--archs", "m4",
                     "--out", str(out)]) == 0
        assert out.exists()
        text = out.read_text()
        assert "up2p" in text

    def test_tables_5(self, capsys):
        from repro.cli import main

        assert main(["tables", "--table", "5"]) == 0
        assert "Cortex-M7" in capsys.readouterr().out

    def test_mission(self, capsys):
        from repro.cli import main

        assert main(["mission", "steer", "--arch", "m33"]) == 0
        out = capsys.readouterr().out
        assert "completed : True" in out
