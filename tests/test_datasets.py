"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import fusion, images, imu, pose, trajectories


class TestImages:
    def test_shapes_and_dtype(self):
        for name in ("midd", "lights", "april"):
            img = images.load(name)
            assert img.shape == images.FEATURE_IMAGE_SHAPE
            assert img.dtype == np.uint8

    def test_custom_shape(self):
        img = images.load("midd", shape=(80, 80))
        assert img.shape == (80, 80)

    def test_deterministic_by_seed(self):
        assert np.array_equal(images.load("midd", seed=3), images.load("midd", seed=3))
        assert not np.array_equal(images.load("midd", seed=3), images.load("midd", seed=4))

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            images.load("kitti")

    def test_lights_is_mostly_dark(self):
        img = images.load("lights")
        assert np.median(img) < 20

    def test_april_has_high_contrast(self):
        img = images.load("april")
        assert img.max() > 240 and img.min() < 15

    def test_shift_image_moves_content(self):
        img = images.load("midd", shape=(64, 64))
        shifted = images.shift_image(img, 3.0, 0.0)
        # Content moved down by 3 rows (interior agrees).
        assert np.abs(
            shifted[10:50, 10:50].astype(int) - img[7:47, 10:50].astype(int)
        ).mean() < 2.0

    def test_flow_pair_carries_truth(self):
        pair = images.flow_pair("midd", displacement=(1.0, -2.0))
        assert pair["true_flow"].tolist() == [1.0, -2.0]
        assert pair["frame0"].shape == images.FLOW_IMAGE_SHAPE


class TestImu:
    @pytest.mark.parametrize("name", ["bee-hover", "strider-straight", "strider-steer"])
    def test_sequence_structure(self, name):
        seq = imu.load(name, n=100)
        assert len(seq) == 100
        assert seq.gyro.shape == (100, 3)
        assert seq.accel.shape == (100, 3)
        assert seq.mag.shape == (100, 3)
        assert seq.truth.shape == (100, 4)

    def test_truth_quaternions_normalized(self):
        seq = imu.load("bee-hover", n=50)
        norms = np.linalg.norm(seq.truth, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-9)

    def test_accel_near_one_g_at_rest_phases(self):
        seq = imu.load("bee-hover", n=200)
        mags = np.linalg.norm(seq.accel, axis=1)
        assert 0.7 < np.median(mags) < 1.3  # g-normalized

    def test_steer_has_largest_gyro_range(self):
        """The Case Study 2 stressor: steering produces unbounded rates."""
        straight = imu.load("strider-straight", n=200).max_sensor_magnitude()
        steer = imu.load("strider-steer", n=200).max_sensor_magnitude()
        assert steer > 2 * straight

    def test_mag_is_unit_field(self):
        seq = imu.load("strider-straight", n=100)
        assert np.allclose(np.linalg.norm(seq.mag, axis=1), 1.0, atol=0.1)

    def test_quat_angle_identity(self):
        q = imu.quat_from_euler(0.3, -0.2, 0.5)
        assert imu.quat_angle_deg(q, q) == pytest.approx(0.0, abs=1e-6)

    @given(st.floats(-1.0, 1.0), st.floats(-1.0, 1.0), st.floats(-1.0, 1.0))
    @settings(max_examples=30)
    def test_quat_matrix_is_rotation(self, r, p, y):
        m = imu.quat_to_matrix(imu.quat_from_euler(r, p, y))
        assert np.allclose(m @ m.T, np.eye(3), atol=1e-9)
        assert np.linalg.det(m) == pytest.approx(1.0)

    def test_gyro_consistent_with_truth(self):
        """Integrating gyro should roughly track the true attitude."""
        seq = imu.load("bee-hover", n=300, seed=5)
        q = seq.truth[0].copy()
        for i in range(1, len(seq)):
            w = seq.gyro[i]
            dq = imu.quat_mul(q, np.array([0.0, *w]) * 0.5 * seq.dt)
            q = q + dq
            q /= np.linalg.norm(q)
        assert imu.quat_angle_deg(q, seq.truth[-1]) < 10.0


class TestPoseData:
    def test_absolute_projection_consistency(self):
        prob = pose.make_absolute_problem(n_points=12, noise_px=0.0, seed=1)
        cam = prob.points_world @ prob.r_true.T + prob.t_true
        proj = cam[:, :2] / cam[:, 2:3]
        assert np.allclose(proj, prob.points_image, atol=1e-12)
        assert np.all(cam[:, 2] > 0)

    def test_absolute_upright_rotation_is_yaw(self):
        prob = pose.make_absolute_problem(upright=True, seed=2)
        # Yaw rotation preserves the y-axis.
        assert np.allclose(prob.r_true @ [0, 1, 0], [0, 1, 0], atol=1e-12)

    def test_outlier_mask_size(self):
        prob = pose.make_absolute_problem(n_points=20, outlier_ratio=0.25, seed=3)
        assert int((~prob.inlier_mask).sum()) == 5

    def test_relative_epipolar_constraint(self):
        prob = pose.make_relative_problem(n_points=10, noise_px=0.0, seed=4)
        e = prob.essential_true()
        x1h = np.hstack([prob.x1, np.ones((10, 1))])
        x2h = np.hstack([prob.x2, np.ones((10, 1))])
        residuals = np.abs(np.sum(x2h * (x1h @ e.T), axis=1))
        assert residuals.max() < 1e-10

    def test_relative_planar_translation(self):
        prob = pose.make_relative_problem(planar=True, upright=True, seed=5)
        assert prob.t_true[1] == 0.0

    def test_homography_maps_points(self):
        prob = pose.make_homography_problem(n_points=10, noise_px=0.0, seed=6)
        x1h = np.hstack([prob.x1, np.ones((10, 1))])
        mapped = x1h @ prob.h_true.T
        mapped = mapped[:, :2] / mapped[:, 2:3]
        assert np.allclose(mapped, prob.x2, atol=1e-9)

    def test_rotation_utilities(self):
        r = pose.yaw_rotation(0.4)
        assert pose.rotation_angle_deg(r, r) == pytest.approx(0.0, abs=1e-8)
        assert pose.rotation_angle_deg(np.eye(3), r) == pytest.approx(np.degrees(0.4))

    def test_translation_direction_error_scale_free(self):
        t = np.array([1.0, 2.0, 3.0])
        assert pose.translation_direction_error_deg(t, 5 * t) == pytest.approx(0.0, abs=1e-2)

    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_random_rotation_valid(self, seed):
        r = pose.random_rotation(np.random.default_rng(seed))
        assert np.allclose(r @ r.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(r) == pytest.approx(1.0)


class TestFusionData:
    def test_fly_synth_rates(self):
        seq = fusion.fly_synth(n=100, tof_divisor=5, flow_divisor=2)
        tof_count = sum(1 for s in seq.samples if s.tof is not None)
        flow_count = sum(1 for s in seq.samples if s.flow is not None)
        assert tof_count == 20
        assert flow_count == 50

    def test_bee_hil_structure(self):
        seq = fusion.bee_hil(n=40)
        assert seq.state_dim == 10
        assert all(s.imu.shape == (6,) for s in seq.samples)

    def test_tof_measures_range_not_altitude(self):
        seq = fusion.fly_synth(n=50, seed=7)
        for s in seq.samples:
            if s.tof is not None:
                z, theta = s.true_state[0], s.true_state[3]
                assert s.tof == pytest.approx(z / np.cos(theta), abs=0.03)

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            fusion.load("car-synth")


class TestTrajectories:
    def test_hover_is_zero(self):
        traj = trajectories.hover(4, 1, n=10)
        assert not traj.states.any()

    def test_step_changes_at_midpoint(self):
        traj = trajectories.step(4, 1, n=10, amplitude=0.5)
        assert traj.states[4, 0] == 0.0
        assert traj.states[5, 0] == 0.5

    def test_figure_eight_velocity_feedforward(self):
        traj = trajectories.figure_eight(6, 3, n=100, dt=0.01, velocity_offset=3)
        # velocity channel should match numerical derivative of position
        vel_num = np.gradient(traj.states[:, 0], 0.01)
        assert np.allclose(traj.states[5:-5, 3], vel_num[5:-5], rtol=0.05, atol=0.02)

    def test_window_pads_at_end(self):
        traj = trajectories.hover(2, 1, n=5)
        win = traj.window(3, 6)
        assert win.shape == (6, 2)

    def test_perturbed_initial_state_deterministic(self):
        a = trajectories.perturbed_initial_state(4, seed=1)
        b = trajectories.perturbed_initial_state(4, seed=1)
        assert np.array_equal(a, b)
