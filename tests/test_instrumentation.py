"""Tests for the simulated measurement chain (GPIO, analyzer, probe, sync)."""

import numpy as np
import pytest

from repro.instrumentation.gpio import GpioBus
from repro.instrumentation.logic_analyzer import LogicAnalyzer
from repro.instrumentation.power_monitor import PowerMonitor
from repro.instrumentation.sync import extract_measurements, summarize, synchronize


class TestGpioBus:
    def test_edges_only_on_change(self):
        bus = GpioBus()
        bus.write("roi", True, 0.0)
        bus.write("roi", True, 1.0)  # no-op
        bus.write("roi", False, 2.0)
        assert len(bus.events) == 2

    def test_time_ordering_enforced(self):
        bus = GpioBus()
        bus.write("roi", True, 1.0)
        with pytest.raises(ValueError):
            bus.write("roi", False, 0.5)

    def test_read_back(self):
        bus = GpioBus()
        assert bus.read("trigger") is False
        bus.write("trigger", True, 0.0)
        assert bus.read("trigger") is True

    def test_subscribers_notified(self):
        bus = GpioBus()
        seen = []
        bus.subscribe(seen.append)
        bus.write("a", True, 0.0)
        bus.write("b", True, 1.0)
        assert [e.pin for e in seen] == ["a", "b"]

    def test_events_for_pin(self):
        bus = GpioBus()
        bus.write("a", True, 0.0)
        bus.write("b", True, 1.0)
        bus.write("a", False, 2.0)
        assert len(bus.events_for("a")) == 2
        assert bus.pins() == ["a", "b"]


class TestLogicAnalyzer:
    def test_captures_only_while_running(self):
        bus = GpioBus()
        la = LogicAnalyzer(bus)
        bus.write("roi", True, 0.0)  # before start: dropped
        la.start()
        bus.write("roi", False, 1.0)
        la.stop()
        bus.write("roi", True, 2.0)  # after stop: dropped
        assert len(la.edges) == 1

    def test_interval_pairing(self):
        bus = GpioBus()
        la = LogicAnalyzer(bus)
        la.start()
        for start, end in ((0.0, 1e-3), (2e-3, 2.5e-3)):
            bus.write("roi", True, start)
            bus.write("roi", False, end)
        intervals = la.intervals("roi")
        assert len(intervals) == 2
        assert intervals[0].duration_s == pytest.approx(1e-3)
        assert intervals[1].duration_s == pytest.approx(0.5e-3)

    def test_timestamps_quantized(self):
        bus = GpioBus()
        la = LogicAnalyzer(bus, sample_rate_hz=1e6)
        la.start()
        bus.write("roi", True, 1.23456789e-3)
        edge = la.edges[0]
        assert edge.time_s == pytest.approx(round(1.23456789e-3 * 1e6) / 1e6)

    def test_first_edge(self):
        bus = GpioBus()
        la = LogicAnalyzer(bus)
        la.start()
        bus.write("trigger", True, 5e-6)
        e = la.first_edge("trigger")
        assert e is not None and e.rising
        assert la.first_edge("other") is None

    def test_export_rows(self):
        bus = GpioBus()
        la = LogicAnalyzer(bus)
        la.start()
        bus.write("roi", True, 0.0)
        rows = la.export()
        assert rows == [(0.0, "roi", 1)]


class TestPowerMonitor:
    def _captured(self, power_w=0.1, duration_s=2e-3, noise_a=0.0):
        bus = GpioBus()
        pm = PowerMonitor(noise_a=noise_a, clock_skew_ppm=0.0)
        bus.subscribe(pm.on_gpio)
        pm.arm()
        bus.write("trigger", True, 0.0)
        pm.add_segment(1e-4, duration_s, power_w, power_w * 1.2)
        return pm.capture()

    def test_trigger_starts_acquisition(self):
        bus = GpioBus()
        pm = PowerMonitor()
        bus.subscribe(pm.on_gpio)
        pm.add_segment(0.0, 1e-3, 0.1, 0.1)  # not armed: dropped
        assert len(pm.capture()) == 0
        pm.arm()
        bus.write("trigger", True, 0.0)
        pm.add_segment(1e-4, 1e-3, 0.1, 0.1)
        assert len(pm.capture()) > 0

    def test_sample_rate(self):
        trace = self._captured(duration_s=10e-3)
        dts = np.diff(trace.times_s)
        assert np.allclose(dts, 1.0 / PowerMonitor.SAMPLE_RATE_HZ, rtol=1e-6)

    def test_current_quantized_to_resolution(self):
        trace = self._captured(noise_a=0.0)
        lsb = PowerMonitor.CURRENT_RESOLUTION_A
        remainders = np.abs(trace.current_a / lsb - np.round(trace.current_a / lsb))
        assert remainders.max() < 1e-6

    def test_mean_power_preserved(self):
        trace = self._captured(power_w=0.15, duration_s=5e-3)
        active = trace.power_w[trace.power_w > 0.01]
        assert active.mean() == pytest.approx(0.15, rel=0.02)

    def test_peak_reached_in_burst(self):
        trace = self._captured(power_w=0.1, duration_s=5e-3)
        assert trace.power_w.max() == pytest.approx(0.12, rel=0.05)

    def test_short_segment_energy_preserved(self):
        """Sub-sample kernels must still integrate to the right energy."""
        bus = GpioBus()
        pm = PowerMonitor(noise_a=0.0, clock_skew_ppm=0.0)
        bus.subscribe(pm.on_gpio)
        pm.arm()
        bus.write("trigger", True, 0.0)
        pm.add_segment(1e-4, 2e-6, 0.1, 0.1)  # 2 us << 10 us sample period
        trace = pm.capture()
        dt = 1.0 / PowerMonitor.SAMPLE_RATE_HZ
        assert float(trace.power_w.sum() * dt) == pytest.approx(0.1 * 2e-6, rel=0.05)


class TestSyncPipeline:
    def _setup_run(self, latencies_s, power_w=0.12, gap_s=5e-4, noise_a=2e-6,
                   skew_ppm=40.0):
        bus = GpioBus()
        la = LogicAnalyzer(bus)
        pm = PowerMonitor(noise_a=noise_a, clock_skew_ppm=skew_ppm)
        bus.subscribe(pm.on_gpio)
        la.start()
        pm.arm()
        t = 0.0
        bus.write("trigger", True, t)
        t += 1e-5
        bus.write("trigger", False, t)
        for lat in latencies_s:
            bus.write("roi", True, t)
            pm.add_segment(t, lat, power_w, power_w * 1.15)
            t += lat
            bus.write("roi", False, t)
            pm.add_segment(t, gap_s, 0.012)
            t += gap_s
        return la, pm.capture()

    def test_measurement_extraction(self):
        latencies = [1.2e-3, 1.2e-3, 1.2e-3]
        la, trace = self._setup_run(latencies)
        capture = synchronize(la, trace)
        measurements = extract_measurements(capture)
        assert len(measurements) == 3
        for m, expected in zip(measurements, latencies):
            assert m.latency_s == pytest.approx(expected, rel=1e-3)
            assert m.avg_power_w == pytest.approx(0.12, rel=0.05)
            assert m.energy_j == pytest.approx(0.12 * expected, rel=0.05)
            assert 0.12 <= m.peak_power_w <= 0.15

    def test_summary_aggregation(self):
        la, trace = self._setup_run([1e-3, 2e-3])
        capture = synchronize(la, trace)
        summary = summarize(extract_measurements(capture))
        assert summary.latency_s == pytest.approx(1.5e-3, rel=1e-3)

    def test_sync_without_trigger_raises(self):
        bus = GpioBus()
        la = LogicAnalyzer(bus)
        la.start()
        bus.write("roi", True, 0.0)
        with pytest.raises(ValueError, match="no trigger edge"):
            synchronize(la, None)

    def test_known_skew_correction_improves_alignment(self):
        la, trace = self._setup_run([2e-3] * 2, skew_ppm=5000.0)
        raw = extract_measurements(synchronize(la, trace))
        corrected = extract_measurements(
            synchronize(la, trace, monitor_skew_ppm=5000.0)
        )
        # Energy recovered with correction should be at least as accurate.
        expected = 0.12 * 2e-3
        err_raw = abs(raw[0].energy_j - expected)
        err_fixed = abs(corrected[0].energy_j - expected)
        assert err_fixed <= err_raw + 1e-9

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])
