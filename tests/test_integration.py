"""Integration tests: end-to-end characterization invariants.

These run a reduced version of the paper's workload characterization and
assert the *relationships* the paper reports, across subsystems.
"""

import numpy as np
import pytest

from repro.core import registry
from repro.core.config import HarnessConfig
from repro.core.experiment import SweepSpec, run_sweep
from repro.core.harness import Harness
from repro.mcu.arch import CHARACTERIZATION_ARCHS, M4, M7
from repro.mcu.cache import CACHE_OFF, CACHE_ON

FAST = HarnessConfig(reps=1, warmup_reps=0)

# One representative kernel per pipeline stage, kept small.
REPRESENTATIVES = ["iiof", "mahony", "p3p", "u3pt", "fly-lqr"]


@pytest.fixture(scope="module")
def sweep():
    spec = SweepSpec(
        kernels=REPRESENTATIVES,
        archs=list(CHARACTERIZATION_ARCHS),
        config=FAST,
        overrides={"mahony": {"n_samples": 80}, "fly-lqr": {"n_steps": 80}},
    )
    return run_sweep(spec)


class TestCharacterizationInvariants:
    def test_everything_valid(self, sweep):
        for r in sweep.results:
            assert r.fits, f"{r.kernel} should fit all three cores"
            assert r.all_valid, f"{r.kernel} on {r.arch}/{r.cache} failed validation"

    def test_m33_wins_energy_everywhere(self, sweep):
        """The paper's process-node headline, across all stages."""
        for kernel in REPRESENTATIVES:
            e = {a.name: sweep.get(kernel, a.name, "C").unit_energy_uj
                 for a in CHARACTERIZATION_ARCHS}
            assert e["m33"] < e["m4"], kernel
            assert e["m33"] < e["m7"], kernel

    def test_m7_cached_is_fastest(self, sweep):
        for kernel in REPRESENTATIVES:
            lat = {a.name: sweep.get(kernel, a.name, "C").unit_latency_us
                   for a in CHARACTERIZATION_ARCHS}
            assert lat["m7"] < lat["m4"], kernel

    def test_cache_off_never_faster(self, sweep):
        for r_on in sweep.results:
            if r_on.cache != "C":
                continue
            r_off = sweep.get(r_on.kernel, r_on.arch, "NC")
            assert r_off.mean_latency_s >= 0.95 * r_on.mean_latency_s

    def test_m7_most_cache_sensitive(self, sweep):
        """Cache sensitivity ordering: M7 > M33 > M4 (paper S5)."""
        def ratio(kernel, arch):
            on = sweep.get(kernel, arch, "C").mean_latency_s
            off = sweep.get(kernel, arch, "NC").mean_latency_s
            return off / on

        for kernel in ("iiof", "p3p"):
            assert ratio(kernel, "m7") > ratio(kernel, "m33") > ratio(kernel, "m4")

    def test_peak_power_ordering(self, sweep):
        """M33 sips power; M4/M7 draw 3-6x more (Table IV Pmax columns)."""
        for kernel in REPRESENTATIVES:
            p = {a.name: sweep.get(kernel, a.name, "C").peak_power_mw
                 for a in CHARACTERIZATION_ARCHS}
            assert p["m33"] < 0.5 * p["m4"]
            assert p["m33"] < 0.5 * p["m7"]

    def test_latency_spectrum_matches_paper_shape(self, sweep):
        """Attitude filters are microseconds; perception is milliseconds."""
        mahony = sweep.get("mahony", "m4", "C").unit_latency_us
        iiof = sweep.get("iiof", "m4", "C").unit_latency_us
        assert mahony < 20
        assert iiof > 500


class TestSuiteWideRun:
    """The 400+ datapoint claim: the full suite runs on all cores."""

    def test_full_suite_produces_datapoints(self):
        from repro.analysis.tables import TABLE_KERNELS

        # 31 kernels x 3 archs x 2 cache states = 186 configurations; with
        # the attitude/EKF/control kernels at reduced sizes this stays fast.
        spec = SweepSpec(
            kernels=list(TABLE_KERNELS),
            archs=list(CHARACTERIZATION_ARCHS),
            config=HarnessConfig(reps=1, warmup_reps=0),
            overrides={
                "mahony": {"n_samples": 60},
                "madgwick": {"n_samples": 60},
                "fourati": {"n_samples": 60},
                "fly-ekf (sync)": {"n_samples": 60},
                "fly-ekf (seq)": {"n_samples": 60},
                "fly-ekf (trunc)": {"n_samples": 60},
                "bee-ceekf": {"n_samples": 20},
                "fly-lqr": {"n_steps": 100},
                "fly-tiny-mpc": {"n_steps": 12},
                "bee-mpc": {"n_steps": 4},
                "bee-geom": {"n_steps": 60},
                "bee-smac": {"n_steps": 80},
            },
        )
        results = run_sweep(spec)
        assert len(results) == 31 * 3 * 2
        ran = [r for r in results.results if r.fits]
        # sift skips the M4 and M33 (cache on and off): 4 skipped configs.
        assert len(ran) == 31 * 6 - 4
        valid = sum(1 for r in ran if r.all_valid)
        assert valid / len(ran) > 0.9

    def test_sift_only_on_m7(self):
        h4 = Harness(M4, FAST)
        r4 = h4.run(registry.create("sift"), CACHE_ON)
        assert not r4.fits
        h7 = Harness(M7, FAST)
        r7 = h7.run(registry.create("sift"), CACHE_ON)
        assert r7.fits and r7.all_valid


class TestCrossKernelShape:
    def test_minimal_solvers_cheapest(self):
        """Case Study 4: priors slash cost by orders of magnitude."""
        h = Harness(M4, FAST)
        lat = {}
        for kernel in ("up2pt", "u3pt", "5pt", "8pt"):
            lat[kernel] = h.run(registry.create(kernel), CACHE_ON).unit_latency_us
        assert lat["up2pt"] < lat["u3pt"] < lat["5pt"]
        assert lat["5pt"] > 10 * lat["up2pt"]

    def test_control_cost_spectrum(self):
        """Table IV ordering: lqr << geom < tinympc < smac << mpc."""
        h = Harness(M4, FAST)
        lat = {}
        for kernel, kwargs in (
            ("fly-lqr", {"n_steps": 100}),
            ("bee-geom", {"n_steps": 60}),
            ("fly-tiny-mpc", {"n_steps": 12}),
            ("bee-smac", {"n_steps": 80}),
            ("bee-mpc", {"n_steps": 4}),
        ):
            lat[kernel] = h.run(registry.create(kernel, **kwargs), CACHE_ON).unit_latency_us
        assert lat["fly-lqr"] < lat["bee-geom"]
        assert lat["bee-geom"] < lat["fly-tiny-mpc"]
        assert lat["fly-tiny-mpc"] < lat["bee-smac"]
        assert lat["bee-smac"] < lat["bee-mpc"]

    def test_ekf_update_strategy_shape(self):
        h = Harness(M4, FAST)
        lat = {}
        for strategy in ("sync", "seq", "trunc"):
            kernel = f"fly-ekf ({strategy})"
            lat[strategy] = h.run(
                registry.create(kernel, n_samples=80), CACHE_ON
            ).unit_latency_us
        assert lat["seq"] > lat["sync"]
        assert lat["trunc"] < lat["seq"]

    def test_bee_ceekf_dwarfs_fly_ekf(self):
        h = Harness(M4, FAST)
        fly = h.run(registry.create("fly-ekf (sync)", n_samples=60), CACHE_ON)
        bee = h.run(registry.create("bee-ceekf", n_samples=20), CACHE_ON)
        assert bee.unit_latency_us > 10 * fly.unit_latency_us
