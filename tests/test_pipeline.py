"""Tests for the cycle model (repro.mcu.pipeline) and arch descriptors."""

import pytest

from repro.backends import arch_names
from repro.mcu.arch import M0PLUS, M33, M4, M7, get_arch
from repro.mcu.cache import CACHE_OFF, CACHE_ON
from repro.mcu.ops import OpCounter, OpTrace
from repro.mcu.pipeline import PipelineModel
from repro.scalar import F32, F64, q


def _float_trace(n=1000):
    return OpTrace(fadd=n, fmul=n, fdiv=n // 10, fsqrt=n // 20,
                   load=2 * n, store=n // 2, ialu=n, br_taken=n // 8)


class TestArch:
    def test_lookup_by_name(self):
        assert get_arch("m4") is M4
        assert get_arch("M7") is M7

    def test_unknown_arch_raises(self):
        with pytest.raises(KeyError):
            get_arch("m55")

    def test_cortex_archs_registered(self):
        assert {"m0plus", "m4", "m33", "m7"} <= set(arch_names())

    def test_m0plus_has_no_fpu(self):
        assert not M0PLUS.fpu.single and not M0PLUS.fpu.double

    def test_m7_has_double_fpu_and_caches(self):
        assert M7.fpu.double
        assert M7.cache.has_icache and M7.cache.has_dcache

    def test_m33_is_modern_node(self):
        assert M33.process_node_nm < M4.process_node_nm

    def test_m7_fastest_clock(self):
        assert M7.clock_hz > M4.clock_hz > M0PLUS.clock_hz


class TestComputeCycles:
    def test_soft_float_cliff_on_m0plus(self):
        """No FPU: float work costs tens of cycles per op (Case Study 2)."""
        t = _float_trace()
        m0 = PipelineModel(M0PLUS).compute_cycles(t, F32)
        m4 = PipelineModel(M4).compute_cycles(t, F32)
        assert m0 > 10 * m4

    def test_double_precision_penalty_on_m4(self):
        """SP-only FPU: doubles are software (Case Study 4)."""
        t = _float_trace()
        pm = PipelineModel(M4)
        assert pm.compute_cycles(t, F64) > 5 * pm.compute_cycles(t, F32)

    def test_double_cheap_on_m7(self):
        """The M7's DP FPU makes doubles only mildly slower."""
        t = _float_trace()
        pm = PipelineModel(M7)
        assert pm.compute_cycles(t, F64) < 2.5 * pm.compute_cycles(t, F32)

    def test_fixed_point_slower_than_hw_float(self):
        """Fixed point pays the shift-back tax on FPU cores (paper S6.B)."""
        t = _float_trace()
        pm = PipelineModel(M4)
        assert pm.compute_cycles(t, q(7, 24)) > pm.compute_cycles(t, F32)

    def test_fixed_point_faster_than_soft_float_on_m0plus(self):
        t = _float_trace()
        pm = PipelineModel(M0PLUS)
        assert pm.compute_cycles(t, q(7, 24)) < pm.compute_cycles(t, F32)

    def test_superscalar_overlap_on_m7(self):
        """Int/mem-heavy code benefits from dual issue."""
        t = OpTrace(ialu=10000, load=10000, store=5000)
        m7 = PipelineModel(M7).compute_cycles(t, F32)
        m4 = PipelineModel(M4).compute_cycles(t, F32)
        assert m7 < m4

    def test_branch_cost_without_predictor(self):
        t = OpTrace(br_taken=1000)
        m4 = PipelineModel(M4).compute_cycles(t, F32)
        m7 = PipelineModel(M7).compute_cycles(t, F32)
        assert m7 < m4  # branch prediction pays off

    def test_empty_trace_costs_nothing(self):
        assert PipelineModel(M4).compute_cycles(OpTrace(), F32) == 0.0

    def test_idiv_expensive_without_hw_divider(self):
        t = OpTrace(idiv=100)
        m0 = PipelineModel(M0PLUS).compute_cycles(t, F32)
        m4 = PipelineModel(M4).compute_cycles(t, F32)
        assert m0 > 5 * m4

    def test_cycles_monotone_in_ops(self):
        pm = PipelineModel(M4)
        small = pm.compute_cycles(OpTrace(fadd=10), F32)
        big = pm.compute_cycles(OpTrace(fadd=1000), F32)
        assert big > small


class TestTotalCycles:
    def test_cache_off_slower_on_m7(self):
        t = _float_trace(5000)
        pm = PipelineModel(M7)
        on = pm.cycles(t, F32, CACHE_ON, code_bytes=20000, data_bytes=30000)
        off = pm.cycles(t, F32, CACHE_OFF, code_bytes=20000, data_bytes=30000)
        assert off.total > 1.5 * on.total

    def test_cache_barely_matters_on_m4(self):
        """The M4's flash accelerator makes C/NC near identical (Table IV)."""
        t = _float_trace(5000)
        pm = PipelineModel(M4)
        on = pm.cycles(t, F32, CACHE_ON, code_bytes=20000, data_bytes=30000)
        off = pm.cycles(t, F32, CACHE_OFF, code_bytes=20000, data_bytes=30000)
        assert off.total < 1.35 * on.total

    def test_breakdown_components_nonnegative(self):
        t = _float_trace(100)
        bd = PipelineModel(M33).cycles(t, F32, CACHE_ON, 5000, 1000)
        assert bd.compute_cycles >= 0
        assert bd.ifetch_stall_cycles >= 0
        assert bd.dmem_stall_cycles >= 0
        assert bd.total == pytest.approx(
            bd.compute_cycles + bd.ifetch_stall_cycles + bd.dmem_stall_cycles
        )

    def test_latency_uses_clock(self):
        t = _float_trace(100)
        pm = PipelineModel(M4)
        bd = pm.cycles(t, F32, CACHE_ON, 5000, 1000)
        assert pm.latency_s(bd) == pytest.approx(bd.total / M4.clock_hz)

    def test_m7_with_cache_fastest_wall_clock(self):
        """Table IV: the M7 (cached) posts the lowest latencies."""
        t = _float_trace(5000)
        lat = {}
        for arch in (M4, M33, M7):
            pm = PipelineModel(arch)
            bd = pm.cycles(t, F32, CACHE_ON, 10000, 8000)
            lat[arch.name] = pm.latency_s(bd)
        assert lat["m7"] < lat["m4"]
        assert lat["m7"] < lat["m33"]
