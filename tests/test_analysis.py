"""Tests for the analysis layer (tables and case-study data assembly).

These use reduced problem sizes to stay fast while exercising the full
assembly paths.
"""

import numpy as np
import pytest

from repro.analysis import attitude_study, flops, perception_study, relpose_study, tables
from repro.core.config import HarnessConfig

FAST = HarnessConfig(reps=1, warmup_reps=0)


class TestTable3:
    ROWS = tables.table3_static(kernels=("fastbrief", "sift", "mahony", "5pt"))

    def test_row_structure(self):
        row = self.ROWS[0]
        assert row["kernel"] == "fastbrief"
        assert row["flash"] > 0
        assert set(row["m4"]) == {"F", "I", "M", "B"}

    def test_sift_missing_on_small_cores(self):
        sift = next(r for r in self.ROWS if r["kernel"] == "sift")
        assert sift["m4"] is None
        assert sift["m33"] is None
        assert sift["m7"] is not None

    def test_five_point_largest_flash(self):
        flash = {r["kernel"]: r["flash"] for r in self.ROWS}
        assert flash["5pt"] > flash["mahony"]
        assert flash["5pt"] > flash["fastbrief"]

    def test_render_contains_rows(self):
        text = tables.render_table3(self.ROWS)
        assert "fastbrief" in text and "sift" in text
        assert text.count("\n") >= len(self.ROWS)


class TestTable4:
    RESULTS = tables.table4_dynamic(kernels=("mahony", "fly-lqr"), config=FAST)

    def test_full_grid(self):
        # 2 kernels x 3 archs x 2 cache states
        assert len(self.RESULTS) == 12

    def test_render(self):
        text = tables.render_table4(self.RESULTS)
        assert "mahony" in text and "fly-lqr" in text

    def test_m33_lowest_energy(self):
        on = {a: self.RESULTS.get("mahony", a, "C") for a in ("m4", "m33", "m7")}
        assert on["m33"].unit_energy_uj < on["m4"].unit_energy_uj
        assert on["m33"].unit_energy_uj < on["m7"].unit_energy_uj


class TestTable5:
    def test_three_cores(self):
        rows = tables.table5_architectures()
        assert [r["core"] for r in rows] == ["Cortex-M4", "Cortex-M33", "Cortex-M7"]
        assert "Cortex-M7" in tables.render_table5(rows)


class TestTable6AndFig3:
    ROWS = tables.table6_perception(config=FAST)

    def test_row_count(self):
        # 2 detectors x 3 datasets + 4 flow kernels
        assert len(self.ROWS) == 10

    def test_orb_costlier_than_fastbrief(self):
        by = {(r["kernel"], r["data"]): r for r in self.ROWS}
        for data in ("midd", "lights", "april"):
            assert (by[("orb", data)]["energy_m4_uj"]
                    > by[("fastbrief", data)]["energy_m4_uj"])

    def test_lights_cheapest_dataset(self):
        by = {(r["kernel"], r["data"]): r for r in self.ROWS}
        for kernel in ("fastbrief", "orb"):
            lights = by[(kernel, "lights")]["energy_m4_uj"]
            assert lights < by[(kernel, "midd")]["energy_m4_uj"]
            assert lights < by[(kernel, "april")]["energy_m4_uj"]

    def test_render(self):
        assert "bbof-vec" in tables.render_table6(self.ROWS)

    def test_fig3_orderings(self):
        rows = perception_study.fig3b_flow_cycles(config=FAST)
        by = {r["kernel"]: r for r in rows}
        assert by["lkof"]["cycles_m4"] > 5 * by["bbof"]["cycles_m4"]
        speedup = perception_study.vectorization_speedup(rows)
        assert 2.5 < speedup < 6.5

    def test_fig3a_dataset_ordering(self):
        rows = perception_study.fig3a_detection_cycles(
            detectors=("fastbrief",), config=FAST
        )
        order = perception_study.dataset_cost_ordering(rows, "fastbrief")
        assert order[0] == "lights"


class TestTable7AndFig4:
    def test_table7_shape_and_relations(self):
        rows = attitude_study.table7_attitude(n_samples=80, config=FAST)
        assert len(rows) == 10  # 5 filter variants x 2 formats
        by = {(r["filter"], r["format"]): r for r in rows}
        f32 = by[("mahony (I)", "f32")]
        q724 = by[("mahony (I)", "q7.24")]
        # M0+ is orders of magnitude slower than M4 in float.
        assert f32["latency_m0plus_us"] > 20 * f32["latency_m4_us"]
        # Fixed point is slower than f32 on FPU cores.
        assert q724["latency_m4_us"] > f32["latency_m4_us"]
        # M0+ peak power far below the others.
        assert f32["pmax_m0plus_mw"] < 0.5 * f32["pmax_m4_mw"]
        # M33 most energy efficient in float.
        assert f32["energy_m33_nj"] < f32["energy_m4_nj"]
        assert "mahony" in attitude_study.render_table7(rows)

    def test_fig4_failure_sweep_has_feasible_window(self):
        rows = attitude_study.fixed_point_failure_sweep(
            filters=[("mahony", "mahony (I)")],
            datasets=("strider-steer",),
            int_bits_range=(2, 5, 8, 16, 24),
            n_samples=100,
        )
        assert len(rows) == 5
        window = attitude_study.feasible_window(rows, "mahony (I)", "strider-steer")
        assert window  # some formats work
        # The narrowest integer format must fail by overflow.
        narrow = next(r for r in rows if r["q_int"] == 2)
        assert narrow["failed"]
        assert narrow["events"]["overflow"] > 0

    def test_failure_rate_series(self):
        rows = attitude_study.fixed_point_failure_sweep(
            filters=[("madgwick", "madgwick (I)")],
            datasets=("bee-hover",),
            int_bits_range=(4, 8),
            n_samples=80,
        )
        series = attitude_study.failure_rate_by_format(rows)
        assert ("madgwick (I)", "bee-hover") in series
        assert len(series[("madgwick (I)", "bee-hover")]) == 2


class TestTable8:
    ROWS = flops.table8_flops(kernels=("fly-lqr", "fly-ekf (trunc)", "bee-ceekf"))

    def test_measured_exceeds_estimate_everywhere(self):
        """The case study's claim: FLOP estimates underpredict energy."""
        for row in self.ROWS:
            for arch in ("m4", "m33", "m7"):
                assert row[f"meas_energy_{arch}_uj"] > row[f"est_energy_{arch}_uj"]

    def test_gap_varies_wildly_across_kernels(self):
        gaps = {r["kernel"]: r["gap_m4"] for r in self.ROWS}
        assert gaps["bee-ceekf"] > 5 * gaps["fly-lqr"]

    def test_render(self):
        assert "bee-ceekf" in flops.render_table8(self.ROWS)


class TestFig5:
    def test_accuracy_vs_noise_grows(self):
        rows = relpose_study.accuracy_vs_noise(
            solvers=("u3pt",), noise_levels_px=(0.0, 1.0), n_problems=15
        )
        by = {(r["solver"], r["scalar"], r["noise_px"]): r for r in rows}
        assert (by[("u3pt", "f32", 1.0)]["median_rot_err_deg"]
                > by[("u3pt", "f32", 0.0)]["median_rot_err_deg"])

    def test_double_not_consistently_better(self):
        """Fig. 5(a): f64 doesn't buy accuracy on well-conditioned data."""
        rows = relpose_study.accuracy_vs_noise(
            solvers=("5pt",), noise_levels_px=(0.5,), n_problems=20
        )
        by = {r["scalar"]: r["median_rot_err_deg"] for r in rows}
        assert by["f64"] > 0.25 * by["f32"]  # same order of magnitude

    def test_solver_cost_ordering(self):
        rows = relpose_study.solver_costs(solvers=("up2pt", "5pt"), config=FAST)
        by = {r["solver"]: r for r in rows}
        assert by["5pt"]["cycles_m4"] > 5 * by["up2pt"]["cycles_m4"]

    def test_ransac_iterations_ordering(self):
        rows = relpose_study.ransac_iterations(
            minimals=("up2pt", "5pt"), n_problems=6
        )
        by = {r["minimal"]: r for r in rows}
        assert by["up2pt"]["mean_iterations"] < by["5pt"]["mean_iterations"]
        assert by["up2pt"]["success_rate"] >= 0.5

    def test_ransac_costs(self):
        rows = relpose_study.ransac_costs(minimals=("u3pt",), config=FAST)
        assert rows[0]["cycles_m4"] > 0
        assert rows[0]["pmax_m4_mw"] > 50
