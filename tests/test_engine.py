"""Tests for the sweep execution engine (`repro.engine`).

Covers the engine's contract with the historical serial driver:

* bit-identical results (parallel + warm cache vs `run_sweep_serial`),
* zero kernel ``solve()`` calls on a warm-cache ``characterize_suite``
  (verified by a counting test double),
* content-address invalidation on changed factory kwargs and seed,
* resume from a partially written checkpoint,
* structured telemetry and the legacy progress-callback adapter,
* the `SweepResults` index and `SweepSpec` config-aliasing fixes.
"""

import json

import pytest

from repro.core import experiment_io, registry
from repro.core.config import HarnessConfig
from repro.core.experiment import (
    SweepResults,
    SweepSpec,
    characterize_suite,
    run_sweep,
    run_sweep_serial,
)
from repro.core.results import BenchmarkResult
from repro.engine import (
    EngineOptions,
    Telemetry,
    TraceCache,
    build_plan,
    run_sweep_engine,
    solve_key,
)
from repro.mcu.arch import CHARACTERIZATION_ARCHS, M4, M33
from repro.mcu.memory import MemoryFitError

KERNELS = ["mahony", "p3p", "fly-lqr"]
OVERRIDES = {"mahony": {"n_samples": 40}, "fly-lqr": {"n_steps": 40}}
FAST = HarnessConfig(reps=2, warmup_reps=1)


def small_spec(archs=(M4, M33), overrides=None):
    return SweepSpec(
        kernels=list(KERNELS),
        archs=list(archs),
        config=FAST,
        overrides=dict(OVERRIDES if overrides is None else overrides),
    )


def install_solve_counter(monkeypatch, kernels, overrides=None):
    """Wrap each kernel class's ``solve`` with a per-kernel call counter."""
    overrides = overrides or {}
    counts = {}
    for name in kernels:
        cls = type(registry.create(name, **overrides.get(name, {})))
        counts[name] = 0
        original = cls.solve

        def counting(self, counter, _name=name, _orig=original):
            counts[_name] += 1
            return _orig(self, counter)

        monkeypatch.setattr(cls, "solve", counting)
    return counts


class TestEquivalence:
    def test_parallel_engine_matches_serial_bit_for_bit(self, tmp_path):
        """jobs=2 + cold disk cache == the serial driver, cell for cell."""
        spec = small_spec()
        serial = run_sweep_serial(spec)
        engine = run_sweep_engine(
            spec, options=EngineOptions(jobs=2, cache_dir=tmp_path / "cache")
        )
        assert len(serial) == len(engine) == len(KERNELS) * 2 * 2
        for expect, got in zip(serial.results, engine.results):
            assert expect == got, (got.kernel, got.arch, got.cache)

    def test_warm_cache_engine_matches_serial_bit_for_bit(self, tmp_path):
        spec = small_spec()
        serial = run_sweep_serial(spec)
        run_sweep_engine(spec, options=EngineOptions(cache_dir=tmp_path / "cache"))

        telemetry = Telemetry()
        warm = run_sweep_engine(
            spec,
            options=EngineOptions(jobs=2, cache_dir=tmp_path / "cache"),
            telemetry=telemetry,
        )
        for expect, got in zip(serial.results, warm.results):
            assert expect == got, (got.kernel, got.arch, got.cache)
        summary = telemetry.summary()
        assert summary["solves_executed"] == 0
        assert summary["cache_hit_rate"] == 1.0

    def test_run_sweep_wrapper_is_engine_backed(self):
        """The compatibility wrapper returns the engine's (deduped) results."""
        spec = small_spec(archs=(M4,))
        serial = run_sweep_serial(spec)
        wrapped = run_sweep(spec)
        assert serial.results == wrapped.results

    def test_unfit_kernels_are_never_solved(self, monkeypatch):
        """sift fits neither M4 nor M33: planned skips, zero compute."""
        counts = install_solve_counter(monkeypatch, ["sift"])
        spec = SweepSpec(kernels=["sift"], archs=[M4, M33], config=FAST)
        serial = run_sweep_serial(spec)  # harness fit-checks before solving
        engine = run_sweep_engine(spec)
        assert counts["sift"] == 0
        assert serial.results == engine.results
        assert all(not r.fits and "SRAM" in r.skip_reason for r in engine.results)

    def test_strict_memory_raises_before_solving(self, monkeypatch):
        counts = install_solve_counter(monkeypatch, ["sift"])
        spec = SweepSpec(
            kernels=["sift"], archs=[M4],
            config=HarnessConfig(reps=1, warmup_reps=0, strict_memory=True),
        )
        with pytest.raises(MemoryFitError):
            run_sweep_engine(spec)
        assert counts["sift"] == 0


class TestWarmCharacterization:
    def test_warm_characterize_suite_zero_solves(self, tmp_path, monkeypatch):
        """Acceptance: >=3 kernels x 3 archs x 2 cache states from a warm
        cache performs zero kernel solve() calls and matches the serial
        path cell-for-cell (cycles, energy, peak power, validity)."""
        cache_dir = tmp_path / "trace-cache"
        archs = list(CHARACTERIZATION_ARCHS)
        assert len(archs) == 3

        serial = run_sweep_serial(SweepSpec(kernels=KERNELS, archs=archs, config=FAST))
        characterize_suite(KERNELS, config=FAST, archs=archs, cache_dir=cache_dir)

        counts = install_solve_counter(monkeypatch, KERNELS)
        warm = characterize_suite(KERNELS, config=FAST, archs=archs,
                                  cache_dir=cache_dir)

        assert sum(counts.values()) == 0, counts
        assert len(warm) == len(serial) == 3 * 3 * 2
        for expect, got in zip(serial.results, warm.results):
            assert (got.kernel, got.arch, got.cache) == \
                (expect.kernel, expect.arch, expect.cache)
            assert got.mean_cycles == expect.mean_cycles
            assert got.mean_energy_j == expect.mean_energy_j
            assert got.peak_power_w == expect.peak_power_w
            assert got.all_valid == expect.all_valid
            assert got == expect  # full bit-identity, runs and traces included


class TestTraceCache:
    def test_key_changes_with_kwargs_and_seed(self):
        base = solve_key("mahony", {"n_samples": 40}, "f32", 0, 2, 1)
        assert base == solve_key("mahony", {"n_samples": 40}, "f32", 0, 2, 1)
        assert base != solve_key("mahony", {"n_samples": 41}, "f32", 0, 2, 1)
        assert base != solve_key("mahony", {"n_samples": 40}, "f32", 7, 2, 1)
        assert base != solve_key("mahony", {"n_samples": 40}, "q7.24", 0, 2, 1)
        assert base != solve_key("mahony", {"n_samples": 40}, "f32", 0, 3, 1)
        assert base != solve_key("madgwick", {"n_samples": 40}, "f32", 0, 2, 1)

    def test_changed_kwargs_invalidate_warm_cache(self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "cache"
        spec = small_spec(archs=(M4,))
        run_sweep_engine(spec, options=EngineOptions(cache_dir=cache_dir))

        counts = install_solve_counter(monkeypatch, KERNELS, OVERRIDES)
        # Same spec: pure cache hits.
        run_sweep_engine(spec, options=EngineOptions(cache_dir=cache_dir))
        assert sum(counts.values()) == 0

        # Changed factory kwargs for one kernel: only that kernel re-solves.
        changed = small_spec(
            archs=(M4,),
            overrides={"mahony": {"n_samples": 41}, "fly-lqr": {"n_steps": 40}},
        )
        run_sweep_engine(changed, options=EngineOptions(cache_dir=cache_dir))
        reps_per_job = FAST.reps + FAST.warmup_reps
        assert counts == {"mahony": reps_per_job, "p3p": 0, "fly-lqr": 0}

        # Changed seed: re-solves again even with identical sizes.
        reseeded = small_spec(
            archs=(M4,),
            overrides={**OVERRIDES, "p3p": {"seed": 9}},
        )
        run_sweep_engine(reseeded, options=EngineOptions(cache_dir=cache_dir))
        assert counts["p3p"] == reps_per_job

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        cache = TraceCache(cache_dir=tmp_path)
        key = solve_key("mahony", {}, "f32", 0, 1, 0)
        (tmp_path / f"{key}.json").write_text("{not json")
        assert cache.get(key) is None
        assert cache.stats.misses == 1

    def test_no_cache_option_still_dedups_within_sweep(self, monkeypatch):
        """use_cache=False disables persistence, not in-sweep grouping."""
        counts = install_solve_counter(monkeypatch, KERNELS, OVERRIDES)
        spec = small_spec()  # 2 archs x 2 caches = 4 cells per kernel
        run_sweep_engine(spec, options=EngineOptions(use_cache=False))
        reps_per_job = FAST.reps + FAST.warmup_reps
        assert counts == {name: reps_per_job for name in KERNELS}


class TestCheckpointResume:
    def test_resume_after_partial_checkpoint(self, tmp_path, monkeypatch):
        spec = small_spec(archs=(M4,))
        checkpoint = tmp_path / "sweep.checkpoint.jsonl"
        full = run_sweep_engine(
            spec, options=EngineOptions(use_cache=False, checkpoint=checkpoint)
        )

        # Simulate a kill: keep the header and every completed cell except
        # p3p's, as if the sweep died mid-way.
        lines = checkpoint.read_text().splitlines()
        kept = [lines[0]] + [
            line for line in lines[1:] if json.loads(line)["cell"][0] != "p3p"
        ]
        assert len(kept) == 1 + 2 * 2  # header + 2 kernels x 2 cache states
        checkpoint.write_text("\n".join(kept) + "\n")

        counts = install_solve_counter(monkeypatch, KERNELS, OVERRIDES)
        telemetry = Telemetry()
        resumed = run_sweep_engine(
            spec,
            options=EngineOptions(
                use_cache=False, checkpoint=checkpoint, resume=True
            ),
            telemetry=telemetry,
        )

        # Only the missing kernel re-solved; completed cells replayed.
        reps_per_job = FAST.reps + FAST.warmup_reps
        assert counts == {"mahony": 0, "p3p": reps_per_job, "fly-lqr": 0}
        summary = telemetry.summary()
        assert summary["cells_resumed"] == 4
        assert summary["cells_run"] == 2
        assert resumed.results == full.results

        # After the resumed run the checkpoint is complete again.
        done = experiment_io.load_checkpoint(checkpoint, build_plan(spec).fingerprint())
        assert len(done) == len(spec.kernels) * 2

    def test_resume_tolerates_torn_tail(self, tmp_path):
        spec = small_spec(archs=(M4,))
        checkpoint = tmp_path / "ck.jsonl"
        run_sweep_engine(
            spec, options=EngineOptions(use_cache=False, checkpoint=checkpoint)
        )
        # A kill mid-write leaves a torn final line.
        torn = checkpoint.read_text()[:-40]
        checkpoint.write_text(torn)
        resumed = run_sweep_engine(
            spec,
            options=EngineOptions(use_cache=False, checkpoint=checkpoint, resume=True),
        )
        serial = run_sweep_serial(spec)
        assert resumed.results == serial.results

    def test_resume_rejects_mismatched_plan(self, tmp_path):
        checkpoint = tmp_path / "ck.jsonl"
        run_sweep_engine(
            small_spec(archs=(M4,)),
            options=EngineOptions(use_cache=False, checkpoint=checkpoint),
        )
        other = small_spec(archs=(M4, M33))
        with pytest.raises(ValueError, match="does not match"):
            run_sweep_engine(
                other,
                options=EngineOptions(
                    use_cache=False, checkpoint=checkpoint, resume=True
                ),
            )


class TestTelemetry:
    def test_event_stream_and_summary(self):
        telemetry = Telemetry()
        run_sweep_engine(small_spec(archs=(M4,)), telemetry=telemetry)
        kinds = [e.kind for e in telemetry.events]
        assert kinds[0] == "sweep_started"
        assert kinds[-1] == "sweep_finished"
        assert kinds.count("solve_started") == kinds.count("solve_finished") == 3
        assert kinds.count("cell_finished") == len(KERNELS) * 2
        summary = telemetry.summary()
        assert summary["cells_total"] == len(KERNELS) * 2
        assert summary["solves_executed"] == 3
        assert summary["wall_s"] > 0
        assert summary["serial_estimate_s"] > 0
        assert set(summary["stage_wall_s"]) == {"solve", "price"}

    def test_legacy_progress_lines_preserved(self):
        spec = small_spec(archs=(M4,))
        legacy, engine_lines = [], []
        run_sweep_serial(spec, progress=legacy.append)
        run_sweep(spec, progress=engine_lines.append)
        assert legacy == engine_lines
        assert len(legacy) == len(KERNELS) * 2

    def test_telemetry_json_roundtrip(self, tmp_path):
        telemetry = Telemetry()
        run_sweep_engine(small_spec(archs=(M4,)), telemetry=telemetry)
        path = experiment_io.save_telemetry_json(
            telemetry.summary(), experiment_io.telemetry_path_for(tmp_path / "r.json")
        )
        assert path.name == "r.telemetry.json"
        loaded = json.loads(path.read_text())
        assert loaded["cells_run"] == len(KERNELS) * 2
        assert 0.0 <= loaded["cache_hit_rate"] <= 1.0


class TestSatelliteFixes:
    def test_sweep_results_index_matches_linear_scan(self):
        results = run_sweep_engine(small_spec())
        for r in results.results:
            assert results.get(r.kernel, r.arch, r.cache) is not None
        hit = results.get("mahony", "m4", "C")
        scan = next(
            r for r in results.results
            if (r.kernel, r.arch, r.cache) == ("mahony", "m4", "C")
        )
        assert hit is scan
        assert results.get("mahony", "m4", "C", scalar="f32") is scan
        assert results.get("mahony", "m4", "C", scalar="q7.24") is None
        assert results.get("nope", "m4", "C") is None

    def test_sweep_results_index_survives_direct_append(self):
        results = SweepResults()
        r = BenchmarkResult(kernel="k", arch="m4", cache="C", scalar="f32",
                            dataset="d", stage="P")
        results.results.append(r)  # bypasses add(); index must self-heal
        assert results.get("k", "m4", "C") is r

    def test_sweep_spec_configs_not_aliased(self):
        a = SweepSpec(kernels=["mahony"])
        b = SweepSpec(kernels=["p3p"])
        assert a.config == b.config
        assert a.config is not b.config

    def test_plan_dedup_accounting(self):
        plan = build_plan(small_spec())
        assert len(plan.cells) == len(KERNELS) * 2 * 2
        assert len(plan.jobs) == len(KERNELS)
        # 4 cells per kernel, solved once each: 3 x 3 executions saved.
        assert plan.n_solves_saved == len(KERNELS) * 3
