"""Tests for the TinyML inference engine and the proximity kernel."""

import numpy as np
import pytest

from repro.mcu.arch import M0PLUS, M4, M33
from repro.mcu.ops import OpCounter
from repro.nn.depthnet import (
    INPUT_SHAPE,
    build_proximity_net,
    clear_scene,
    looming_scene,
    proximity_score,
)
from repro.nn.layers import (
    Conv2D,
    Dense,
    GlobalAveragePool,
    MaxPool2D,
    Network,
    QuantParams,
    ReLU,
)


class TestLayers:
    def test_conv2d_identity_kernel(self):
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        conv = Conv2D(w, padding="same")
        x = np.random.default_rng(0).normal(size=(1, 8, 8))
        out = conv.forward(OpCounter(), x)
        assert np.allclose(out, x)

    def test_conv2d_matches_direct_convolution(self):
        rng = np.random.default_rng(1)
        w = rng.normal(size=(2, 3, 3, 3))
        x = rng.normal(size=(3, 10, 10))
        out = Conv2D(w, padding="same").forward(OpCounter(), x)
        # Check one output element by hand.
        xp = np.pad(x, ((0, 0), (1, 1), (1, 1)))
        expected = sum(
            w[0, ci, dy, dx] * xp[ci, 4 + dy, 5 + dx]
            for ci in range(3) for dy in range(3) for dx in range(3)
        )
        assert out[0, 4, 5] == pytest.approx(expected)

    def test_conv2d_channel_mismatch(self):
        conv = Conv2D(np.zeros((1, 2, 3, 3)))
        with pytest.raises(ValueError):
            conv.forward(OpCounter(), np.zeros((3, 8, 8)))

    def test_relu(self):
        out = ReLU().forward(OpCounter(), np.array([[-1.0, 2.0]]))
        assert out.tolist() == [[0.0, 2.0]]

    def test_maxpool(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 4, 4)
        out = MaxPool2D(2).forward(OpCounter(), x)
        assert out[0].tolist() == [[5.0, 7.0], [13.0, 15.0]]

    def test_global_average_pool(self):
        x = np.ones((3, 4, 4)) * np.array([1.0, 2.0, 3.0])[:, None, None]
        out = GlobalAveragePool().forward(OpCounter(), x)
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_dense(self):
        d = Dense(np.array([[1.0, 2.0]]), np.array([0.5]))
        assert d.forward(OpCounter(), np.array([3.0, 4.0]))[0] == pytest.approx(11.5)

    def test_dense_size_mismatch(self):
        d = Dense(np.array([[1.0, 2.0]]))
        with pytest.raises(ValueError):
            d.forward(OpCounter(), np.zeros(3))

    def test_conv_cost_scales_with_kernel_size(self):
        x = np.zeros((1, 16, 16))
        c3, c5 = OpCounter(), OpCounter()
        Conv2D(np.zeros((1, 1, 3, 3))).forward(c3, x)
        Conv2D(np.zeros((1, 1, 5, 5))).forward(c5, x)
        assert c5.trace.ffma > 2 * c3.trace.ffma

    def test_output_shapes(self):
        net = build_proximity_net()
        shape = INPUT_SHAPE
        for layer in net.layers:
            shape = layer.output_shape(shape)
        assert shape == (1,)


class TestQuantization:
    def test_quantize_roundtrip_within_scale(self):
        q = QuantParams.from_range(-2.0, 2.0)
        x = np.linspace(-2.0, 2.0, 50)
        back = q.dequantize(q.quantize(x))
        assert np.abs(back - x).max() <= q.scale

    def test_int8_inference_close_to_float(self):
        net = build_proximity_net()
        frame = looming_scene(seed=0)
        x = frame.astype(np.float64)[None] / 255.0
        f = net.forward(OpCounter(), x)
        q = net.forward_int8(OpCounter(), x)
        assert q[0] == pytest.approx(f[0], abs=0.05)

    def test_int8_preserves_discrimination(self):
        net = build_proximity_net()
        near = looming_scene(seed=1).astype(np.float64)[None] / 255.0
        far = clear_scene(seed=1).astype(np.float64)[None] / 255.0
        qn = net.forward_int8(OpCounter(), near)
        qf = net.forward_int8(OpCounter(), far)
        assert qn[0] > qf[0]

    def test_int8_footprint_quarter_of_float(self):
        net = build_proximity_net()
        f32 = net.footprint_bytes(INPUT_SHAPE, int8=False)
        i8 = net.footprint_bytes(INPUT_SHAPE, int8=True)
        assert i8 < 0.3 * f32


class TestProximityKernel:
    def test_scores_separate_scenes(self):
        near = [proximity_score(OpCounter(), looming_scene(seed=s)) for s in range(5)]
        far = [proximity_score(OpCounter(), clear_scene(seed=s)) for s in range(5)]
        assert min(near) > max(far)

    def test_registered_and_validates(self):
        from repro.core import registry
        from repro.core.config import HarnessConfig
        from repro.core.harness import Harness
        from repro.mcu.cache import CACHE_ON

        p = registry.create("proximity-net")
        r = Harness(M33, HarnessConfig(reps=1, warmup_reps=0)).run(p, CACHE_ON)
        assert r.fits and r.all_valid

    def test_fits_m4_not_m0plus(self):
        """Int8 activations fit the M4's 128 KB; the M0+'s 36 KB is out."""
        from repro.core import registry
        from repro.mcu.memory import check_fit

        p = registry.create("proximity-net")
        p.ensure_setup()
        assert check_fit(p.footprint(), M4).fits
        assert not check_fit(p.footprint(), M0PLUS).fits

    def test_cnn_is_heavyweight(self):
        """CNN inference dwarfs the classical perception kernels — the
        reason the paper's suite does not yet ship one."""
        from repro.datasets import images
        from repro.perception.fast import fast_detect

        c_nn, c_fast = OpCounter(), OpCounter()
        proximity_score(c_nn, looming_scene())
        fast_detect(c_fast, images.load("midd", shape=(80, 80)))
        assert c_nn.trace.total > 3 * c_fast.trace.total

    def test_flop_estimate_underpredicts(self):
        """Case Study 3 extends to CNNs: MAC tallies miss the memory and
        bookkeeping cost of real inference loops."""
        from repro.core import registry

        p = registry.create("proximity-net")
        p.ensure_setup()
        c = OpCounter()
        p.solve(c)
        assert c.trace.total > p.flop_estimate()
