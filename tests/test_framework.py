"""Tests for the core framework: problem, harness, registry, experiment."""

import numpy as np
import pytest

from repro.core import registry
from repro.core.config import HarnessConfig
from repro.core.experiment import SweepSpec, run_sweep
from repro.core.harness import Harness
from repro.core.problem import EntoProblem
from repro.core.results import BenchmarkResult, RunRecord, si_format
from repro.instrumentation.gpio import GpioBus
from repro.instrumentation.logic_analyzer import LogicAnalyzer
from repro.instrumentation.power_monitor import PowerMonitor
from repro.instrumentation.sync import extract_measurements, synchronize
from repro.mcu.arch import M4, M7
from repro.mcu.cache import CACHE_OFF, CACHE_ON
from repro.mcu.memory import Footprint, MemoryFitError
from repro.mcu.ops import OpCounter
from repro.mcu.static import StaticMix
from repro.scalar import F32


class ToyProblem(EntoProblem):
    """A minimal, fast problem for framework tests (vector-vector add,
    like the artifact appendix's example kernel)."""

    name = "example-vvadd"
    stage = "P"
    category = "Example"
    dataset_name = "synthetic"

    def __init__(self, scalar=F32, seed=0, n=64, huge=False, fail=False):
        super().__init__(scalar, seed)
        self.n = n
        self.huge = huge
        self.fail = fail
        self.a = self.b = None

    def setup(self, rng):
        self.a = rng.normal(size=self.n)
        self.b = rng.normal(size=self.n)

    def solve(self, counter: OpCounter):
        counter.vec_add(self.n)
        return self.a + self.b

    def validate(self, result) -> bool:
        if self.fail:
            return False
        return np.allclose(result, self.a + self.b)

    def static_mix_base(self) -> StaticMix:
        return StaticMix(600, 0, 40, 30, 12)

    def footprint(self) -> Footprint:
        data = 10**8 if self.huge else self.n * 3 * 4
        return Footprint(flash_bytes=600, data_bytes=data)


class TestHarness:
    def test_reps_counted(self):
        h = Harness(M4, HarnessConfig(reps=4, warmup_reps=2))
        result = h.run(ToyProblem(), CACHE_ON)
        assert len(result.runs) == 4
        assert result.runs[0].rep == 0

    def test_validation_recorded(self):
        h = Harness(M4, HarnessConfig(reps=1, warmup_reps=0))
        ok = h.run(ToyProblem(), CACHE_ON)
        bad = h.run(ToyProblem(fail=True), CACHE_ON)
        assert ok.all_valid
        assert not bad.all_valid

    def test_memory_skip(self):
        h = Harness(M4, HarnessConfig(reps=1, warmup_reps=0))
        result = h.run(ToyProblem(huge=True), CACHE_ON)
        assert not result.fits
        assert result.runs == []
        assert "SRAM" in result.skip_reason

    def test_strict_memory_raises(self):
        h = Harness(M4, HarnessConfig(reps=1, warmup_reps=0, strict_memory=True))
        with pytest.raises(MemoryFitError):
            h.run(ToyProblem(huge=True), CACHE_ON)

    def test_work_units_propagated(self):
        h = Harness(M4, HarnessConfig(reps=1, warmup_reps=0))
        p = ToyProblem()
        p.work_units = 10
        result = h.run(p, CACHE_ON)
        assert result.work_units == 10
        assert result.unit_latency_us == pytest.approx(result.mean_latency_us / 10)

    def test_deterministic_across_runs(self):
        h1 = Harness(M4, HarnessConfig(reps=2, warmup_reps=0))
        h2 = Harness(M4, HarnessConfig(reps=2, warmup_reps=0))
        r1 = h1.run(ToyProblem(), CACHE_ON)
        r2 = h2.run(ToyProblem(), CACHE_ON)
        assert r1.mean_cycles == r2.mean_cycles
        assert r1.mean_energy_j == r2.mean_energy_j

    def test_cache_states_differ_on_m7(self):
        cfg = HarnessConfig(reps=1, warmup_reps=0)
        on = Harness(M7, cfg).run(ToyProblem(n=4096), CACHE_ON)
        off = Harness(M7, cfg.with_cache(False)).run(ToyProblem(n=4096), CACHE_OFF)
        assert off.mean_latency_s > on.mean_latency_s

    def test_end_to_end_with_instruments(self):
        """Full measurement chain: harness -> GPIO -> analyzer + probe ->
        sync -> recovered metrics match the model's report."""
        bus = GpioBus()
        analyzer = LogicAnalyzer(bus)
        monitor = PowerMonitor(noise_a=1e-6)
        bus.subscribe(monitor.on_gpio)
        analyzer.start()
        monitor.arm()
        h = Harness(M4, HarnessConfig(reps=3, warmup_reps=1),
                    gpio=bus, power_monitor=monitor)
        result = h.run(ToyProblem(n=8000), CACHE_ON)
        capture = synchronize(analyzer, monitor.capture())
        measurements = extract_measurements(capture)
        assert len(measurements) == 4  # warmup + 3 measured ROIs
        recovered = measurements[-1]
        assert recovered.latency_s == pytest.approx(result.mean_latency_s, rel=0.01)
        assert recovered.energy_j == pytest.approx(result.mean_energy_j, rel=0.15)


class TestRegistry:
    def test_all_suite_kernels_registered(self):
        names = registry.names()
        for expected in ("fastbrief", "orb", "sift", "mahony", "bee-ceekf",
                         "p3p", "5pt", "rel-lo-ransac", "fly-lqr", "bee-smac"):
            assert expected in names

    def test_suite_size(self):
        # 31 paper kernels + bbof-vec + 2 explicit MARG variants
        # + the axle-smooth and proximity-net expansion kernels
        # + the quantized int8/int16 proximity-net deployment variants.
        assert len(registry.names()) == 38

    def test_create_unknown_raises(self):
        with pytest.raises(KeyError):
            registry.create("yolo")

    def test_stages_partition(self):
        p = registry.by_stage("P")
        s = registry.by_stage("S")
        c = registry.by_stage("C")
        assert "fastbrief" in p
        assert "p3p" in s
        assert "fly-lqr" in c
        assert len(p) + len(s) + len(c) == len(registry.names())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            registry.register("fastbrief")(ToyProblem)

    def test_factory_kwargs(self):
        p = registry.create("mahony", n_samples=42)
        p.ensure_setup()
        assert p.work_units == 42


class TestSweep:
    def test_small_sweep(self):
        spec = SweepSpec(
            kernels=["mahony", "fly-lqr"],
            archs=[M4],
            config=HarnessConfig(reps=1, warmup_reps=0),
            overrides={"mahony": {"n_samples": 50}, "fly-lqr": {"n_steps": 50}},
        )
        results = run_sweep(spec)
        assert len(results) == 4  # 2 kernels x 1 arch x 2 cache states
        assert results.get("mahony", "m4", "C") is not None
        assert results.get("mahony", "m4", "NC") is not None

    def test_datapoints_counted(self):
        spec = SweepSpec(
            kernels=["fly-lqr"], archs=[M4],
            config=HarnessConfig(reps=3, warmup_reps=0),
            overrides={"fly-lqr": {"n_steps": 20}},
        )
        results = run_sweep(spec)
        assert results.datapoints() == 6

    def test_progress_callback(self):
        lines = []
        spec = SweepSpec(kernels=["fly-lqr"], archs=[M4],
                         config=HarnessConfig(reps=1, warmup_reps=0),
                         overrides={"fly-lqr": {"n_steps": 10}})
        run_sweep(spec, progress=lines.append)
        assert len(lines) == 2


class TestResults:
    def _result(self):
        from repro.mcu.ops import OpTrace

        r = BenchmarkResult(kernel="k", arch="m4", cache="C", scalar="f32",
                            dataset="d", stage="P", work_units=2)
        for i, cycles in enumerate((100.0, 200.0)):
            r.runs.append(RunRecord(
                rep=i, cycles=cycles, latency_s=cycles / 1e6,
                energy_j=cycles * 1e-9, avg_power_w=0.1, peak_power_w=0.12 + i * 0.01,
                trace=OpTrace(fadd=10), valid=True,
            ))
        return r

    def test_aggregates(self):
        r = self._result()
        assert r.mean_cycles == 150.0
        assert r.unit_cycles == 75.0
        assert r.peak_power_w == pytest.approx(0.13)
        assert r.all_valid

    def test_empty_result_nan(self):
        r = BenchmarkResult(kernel="k", arch="m4", cache="C", scalar="f32",
                            dataset="d", stage="P")
        assert np.isnan(r.mean_cycles)

    def test_summary_keys(self):
        s = self._result().summary()
        assert s["kernel"] == "k"
        assert s["reps"] == 2

    def test_si_format(self):
        assert si_format(26_000) == "26K"
        assert si_format(2_000_000) == "2M"
        assert si_format(0.5) == "0.5"
        assert si_format(float("nan")) == "-"
