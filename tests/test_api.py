"""Tests for the ``repro.api`` facade.

The first test is the public-API snapshot: ``repro.api.__all__`` is
compared against a pinned list, so any addition, removal, or rename of
the supported surface fails here until this file is updated — an
explicit, reviewed act.  The rest covers the deprecation shims, the
verb wrappers, and the typed ``ResultKeyError`` lookup contract.
"""

import warnings

import pytest

import repro.api as api
from repro.core.config import HarnessConfig

#: The pinned public surface.  Changing ``repro.api.__all__`` without
#: updating this list is unreviewed API drift and must fail.
PUBLIC_API = [
    "CampaignQuery",
    "CampaignResult",
    "CampaignSpec",
    "CharacterizeQuery",
    "DEFAULT_PORT",
    "EngineOptions",
    "FlappingWingRunner",
    "HarnessConfig",
    "HoverMission",
    "MISSION_NAMES",
    "MissionKeyError",
    "MissionQuery",
    "MissionResult",
    "MissionSpec",
    "QueryOptions",
    "QueryValidationError",
    "ResultKeyError",
    "ScenarioGenerator",
    "ScenarioSet",
    "ScenarioSpec",
    "ServiceBroker",
    "ServiceClient",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceServer",
    "ServiceTimeout",
    "ShardPool",
    "ShardUnavailable",
    "SteeringCourse",
    "StriderRunner",
    "SweepResults",
    "SweepSpec",
    "Telemetry",
    "TraceCache",
    "WaypointMission",
    "build_report",
    "characterize",
    "fault_names",
    "generate_scenarios",
    "get_arch",
    "get_fault",
    "list_backends",
    "mission_names",
    "price_batch",
    "query",
    "register_mission",
    "render_report",
    "run_campaign",
    "run_mission",
    "run_scenarios",
    "save_report",
    "sweep",
]

CONFIG = HarnessConfig(reps=1, warmup_reps=0)
OVERRIDES = {"*": {"n_samples": 40}}


# ----------------------------------------------------------- the snapshot


def test_public_api_snapshot():
    assert sorted(api.__all__) == PUBLIC_API
    assert len(set(api.__all__)) == len(api.__all__)


def test_every_public_name_resolves():
    for name in api.__all__:
        assert getattr(api, name) is not None


def test_dir_lists_public_and_deprecated_names():
    listed = dir(api)
    for name in PUBLIC_API:
        assert name in listed
    assert "FaultCampaignSpec" in listed
    assert "characterize_suite" in listed


# ------------------------------------------------------ deprecation shims


def test_deprecated_aliases_warn_once_and_forward():
    api._warned.clear()
    with pytest.warns(DeprecationWarning, match="use repro.api.CampaignSpec"):
        legacy = api.FaultCampaignSpec
    assert legacy is api.CampaignSpec
    # Second access is silent: the warning fires once per process.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert api.FaultCampaignSpec is api.CampaignSpec

    api._warned.discard("characterize_suite")
    with pytest.warns(DeprecationWarning, match="use repro.api.characterize"):
        assert api.characterize_suite is api.characterize


def test_deprecated_aliases_stay_out_of_all():
    assert "FaultCampaignSpec" not in api.__all__
    assert "characterize_suite" not in api.__all__


def test_unknown_attribute_raises_attribute_error():
    with pytest.raises(AttributeError, match="no attribute"):
        api.definitely_not_a_name


# ------------------------------------------------------------- the verbs


def test_run_mission_accepts_spec_or_bare_name():
    by_spec = api.run_mission(api.MissionSpec(mission="hover", arch="m33"))
    by_name = api.run_mission("hover", arch="m33")
    assert by_spec == by_name


def test_run_mission_rejects_arch_alongside_a_spec():
    with pytest.raises(TypeError, match="inside the MissionSpec"):
        api.run_mission(api.MissionSpec(mission="hover"), arch="m4")


def test_sweep_verb_runs_a_spec():
    from repro.mcu.arch import get_arch
    from repro.mcu.cache import CACHE_ON

    results = api.sweep(api.SweepSpec(
        kernels=["mahony"],
        archs=[get_arch("m33")],
        caches=(CACHE_ON,),
        config=CONFIG,
        overrides=OVERRIDES,
    ))
    assert results.lookup("mahony", "m33", "C").kernel == "mahony"


def test_query_verb_answers_a_wire_dict():
    payload = api.query({
        "op": "mission", "mission": "hover", "arch": "m33",
    })
    assert payload["kind"] == "mission"
    assert payload["result"]["completed"] in (True, False)


# ----------------------------------------------------- typed lookup errors


@pytest.fixture(scope="module")
def small_results():
    from repro.mcu.arch import get_arch
    from repro.mcu.cache import CACHE_ON

    return api.sweep(api.SweepSpec(
        kernels=["mahony"],
        archs=[get_arch("m33")],
        caches=(CACHE_ON,),
        config=CONFIG,
        overrides=OVERRIDES,
    ))


def test_lookup_miss_raises_typed_keyerror_with_suggestion(small_results):
    with pytest.raises(api.ResultKeyError) as excinfo:
        small_results.lookup("mahony", "m7", "C")
    err = excinfo.value
    assert isinstance(err, KeyError)
    assert err.requested == ("mahony", "m7", "C")
    assert err.suggestion == ("mahony", "m33", "C")
    assert "nearest indexed cell" in str(err)
    # get() keeps the probing contract: None, never a raise.
    assert small_results.get("mahony", "m7", "C") is None
