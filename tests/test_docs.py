"""Documentation consistency checks.

The docs promise CLI surface; the argparse tree delivers it.  These
tests keep the two from drifting: every ``--flag`` mentioned anywhere in
the markdown docs must exist on some ``repro`` subcommand, and every
subcommand must be documented in the README.
"""

import argparse
import re
from pathlib import Path

import pytest

from repro.cli import TRACEABLE_COMMANDS, build_parser

REPO = Path(__file__).resolve().parent.parent

#: Markdown files whose flag mentions must match the CLI.
DOC_FILES = sorted(
    p for p in [
        REPO / "README.md",
        REPO / "DESIGN.md",
        REPO / "EXPERIMENTS.md",
        *(REPO / "docs").glob("*.md"),
    ]
    if p.exists()
)

#: Flags of *other* tools that the docs legitimately mention.
EXTERNAL_FLAGS = {
    "--benchmark-only",   # pytest-benchmark
    "--benchmark-json",   # pytest-benchmark
    "--cov",              # pytest-cov
    "--quick",            # benchmarks/bench_vecprice.py's own CLI
}

FLAG_RE = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]*")


def walk_parsers(parser):
    """Yield every (sub)parser in the argparse tree, root included."""
    yield parser
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            seen = set()
            for sub in action.choices.values():
                if id(sub) not in seen:
                    seen.add(id(sub))
                    yield from walk_parsers(sub)


def cli_flags():
    """Every option string any repro subcommand accepts."""
    flags = set()
    for parser in walk_parsers(build_parser()):
        for action in parser._actions:
            flags.update(action.option_strings)
    return flags


def cli_subcommands():
    """Top-level subcommand names from the argparse tree."""
    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return set(action.choices)
    raise AssertionError("repro parser has no subparsers")


def documented_flags(path):
    return set(FLAG_RE.findall(path.read_text()))


def test_doc_files_exist():
    names = {p.name for p in DOC_FILES}
    assert {"README.md", "DESIGN.md", "EXPERIMENTS.md",
            "architecture.md", "observability.md",
            "static-analysis.md", "pricing.md", "benchmarks.md"} <= names


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_every_documented_flag_exists(path):
    known = cli_flags() | EXTERNAL_FLAGS
    unknown = documented_flags(path) - known
    assert not unknown, (
        f"{path.name} documents flags the CLI does not have: "
        f"{sorted(unknown)}"
    )


def test_every_subcommand_documented_in_readme():
    readme = (REPO / "README.md").read_text()
    missing = {
        cmd for cmd in cli_subcommands()
        if not re.search(rf"\brepro {cmd}\b", readme)
    }
    assert not missing, f"README.md never shows: {sorted(missing)}"


def test_readme_documents_engine_flags():
    """The quickstart table must cover the engine's headline flags."""
    readme_flags = documented_flags(REPO / "README.md")
    assert {"--jobs", "--cache-dir", "--checkpoint", "--resume",
            "--trace", "--metrics-out", "--price"} <= readme_flags


def test_readme_documents_backends_subcommand_and_riscv_cores():
    """The CLI table must cover the backend registry surface: the
    ``repro backends list|show`` inspection verbs and the fact that
    ``--arch``/``--archs`` accept the RV32 cores, not just Cortex-M."""
    readme = (REPO / "README.md").read_text()
    assert re.search(r"\brepro backends\b", readme)
    for verb in ("list", "show"):
        assert re.search(rf"\brepro backends\b.*`{verb}\b", readme), verb
    for core in ("rv32imc", "rv32imafc", "rv32ec"):
        assert core in readme, f"README never mentions --arch {core}"


def test_backends_subcommand_has_list_and_show():
    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            backends = action.choices["backends"]
            for sub in backends._actions:
                if isinstance(sub, argparse._SubParsersAction):
                    assert {"list", "show"} <= set(sub.choices)
                    return
    raise AssertionError("repro backends has no list/show subcommands")


def test_benchmarks_doc_catalogs_every_bench_script():
    """docs/benchmarks.md must list every benchmarks/bench_*.py on disk
    and every BENCH_*.json baseline they seed."""
    doc = (REPO / "docs" / "benchmarks.md").read_text()
    scripts = sorted(p.name for p in (REPO / "benchmarks").glob("bench_*.py"))
    assert scripts, "no bench scripts found — wrong repo layout?"
    missing = [s for s in scripts if f"`{s}`" not in doc]
    assert not missing, (
        f"docs/benchmarks.md does not catalog: {missing}; every bench "
        "script must have a row in the catalog table"
    )
    baselines = {p.name for p in REPO.glob("BENCH_*.json")}
    baselines |= {p.name for p in (REPO / "benchmarks").glob("BENCH_*.json")}
    undocumented = {b for b in baselines if b not in doc}
    assert not undocumented, (
        f"docs/benchmarks.md never mentions: {sorted(undocumented)}"
    )


def test_pricing_doc_linked_and_names_both_paths():
    """docs/pricing.md must exist, be reachable from the README, and
    document the byte-identity contract plus both price paths."""
    readme = (REPO / "README.md").read_text()
    assert "docs/pricing.md" in readme
    assert "docs/benchmarks.md" in readme
    pricing = (REPO / "docs" / "pricing.md").read_text()
    for needle in ("byte-identical", "repro.vecprice", "vectorize",
                   "--price", "BENCH_vecprice.json"):
        assert needle in pricing, needle


def test_readme_documents_lint_flags():
    """The CLI table must cover the lint subcommand's full surface."""
    readme_flags = documented_flags(REPO / "README.md")
    assert {"--format", "--rules", "--baseline", "--update-baseline",
            "--root", "--list"} <= readme_flags


def test_lint_subcommand_exists_and_is_not_traceable():
    assert "lint" in cli_subcommands()
    assert "lint" not in TRACEABLE_COMMANDS


def test_trace_wraps_exactly_the_traceable_commands():
    parser = build_parser()
    trace = None
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            trace = action.choices["trace"]
    for action in trace._actions:
        if isinstance(action, argparse._SubParsersAction):
            assert set(action.choices) == set(TRACEABLE_COMMANDS)
            return
    raise AssertionError("repro trace has no nested subcommands")


def test_traceable_commands_accept_obs_flags():
    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name in TRACEABLE_COMMANDS:
                flags = set()
                for sub_action in action.choices[name]._actions:
                    flags.update(sub_action.option_strings)
                assert {"--trace", "--metrics-out"} <= flags, name
