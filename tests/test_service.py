"""Tests for ``repro.service``: the coalescing benchmark-query broker.

The headline assertions mirror the subsystem's contract:

* a burst of 64 mixed queries over 8 distinct cells performs exactly one
  miss per distinct cell (and, via the solve/price split, one engine
  solve per distinct *kernel*), with every duplicate answered as a hit;
* answers are byte-identical to the serial reference driver;
* N concurrent identical queries are single-flight: 1 miss, N-1 hits;
* backpressure, close semantics, the LRU answer cache, the wire
  protocol, and the JSONL server round trip.
"""

import json
import threading
import time

import pytest

import repro.obs as obs
import repro.service.broker as broker_mod
from repro.core.config import HarnessConfig
from repro.core.experiment import SweepSpec, run_sweep_serial
from repro.core.experiment_io import result_to_dict
from repro.engine import Telemetry
from repro.mcu.arch import get_arch
from repro.mcu.cache import CACHE_OFF, CACHE_ON
from repro.service import (
    BrokerClosed,
    CampaignQuery,
    CharacterizeQuery,
    MissionQuery,
    ResultCache,
    ServiceBroker,
    ServiceClient,
    ServiceServer,
    mission_record,
    parse_request,
    query_key,
    request_of,
)

#: One rep, no warmup, shrunk sequences: answers stay exact, tests stay fast.
CONFIG = HarnessConfig(reps=1, warmup_reps=0)
OVERRIDES = {"*": {"n_samples": 40}}

KERNELS = ("mahony", "madgwick")
ARCH_NAMES = ("m4", "m33")
CACHE_LABELS = ("C", "NC")


def distinct_cells():
    """The 8 distinct characterize cells the burst tests sweep."""
    return [
        CharacterizeQuery(kernel=k, arch=a, cache=c)
        for k in KERNELS for a in ARCH_NAMES for c in CACHE_LABELS
    ]


@pytest.fixture
def metrics():
    """Enabled metrics registry, restored to disabled afterwards."""
    _, registry = obs.observe()
    yield registry
    obs.unobserve()


def counting_run_plan(monkeypatch):
    """Spy on the broker's ``run_plan`` seam, tallying executed solves."""
    solves = []
    original = broker_mod.run_plan

    def spy(plan, options=None, telemetry=None):
        telemetry = telemetry or Telemetry()
        results = original(plan, options=options, telemetry=telemetry)
        solves.append(telemetry.summary()["solves_executed"])
        return results

    monkeypatch.setattr(broker_mod, "run_plan", spy)
    return solves


# ------------------------------------------------------- the headline burst


def test_burst_of_64_mixed_queries_coalesces_and_matches_serial(
    metrics, monkeypatch
):
    solves = counting_run_plan(monkeypatch)
    cells = distinct_cells()
    queries = cells * 8  # 64 queries, duplicates interleaved

    with ServiceBroker(config=CONFIG, overrides=OVERRIDES) as broker:
        payloads = broker.ask_many(queries)

    assert len(payloads) == 64
    # Duplicates get byte-identical answers to their first occurrence.
    for i, payload in enumerate(payloads):
        assert json.dumps(payload, sort_keys=True) == \
            json.dumps(payloads[i % len(cells)], sort_keys=True)

    # Exactly one miss per distinct cell, however the burst batched.
    counters = metrics.as_dict()["counters"]
    assert counters["service.queries"] == 64
    assert counters["service.misses"] == len(cells)
    assert counters["service.hits"] == 64 - len(cells)
    assert counters.get("service.errors", 0) == 0
    assert counters["service.batches"] >= 1

    # Queue and batch latency histograms exported through repro.obs.
    histograms = metrics.as_dict()["histograms"]
    assert histograms["service.queue_wall_s"]["count"] == 64
    assert histograms["service.batch_wall_s"]["count"] >= 1

    # The solve/price split goes further than one solve per cell: the 8
    # cells share 2 kernel configurations, so exactly 2 solves execute.
    assert sum(solves) == len(KERNELS)

    # Byte-identity against the serial reference driver, cell by cell.
    serial = run_sweep_serial(SweepSpec(
        kernels=list(KERNELS),
        archs=[get_arch(a) for a in ARCH_NAMES],
        caches=(CACHE_ON, CACHE_OFF),
        config=CONFIG,
        overrides=OVERRIDES,
    ))
    for query, payload in zip(cells, payloads):
        expected = result_to_dict(
            serial.get(query.kernel, query.arch, query.cache)
        )
        assert json.dumps(payload["result"], sort_keys=True) == \
            json.dumps(expected, sort_keys=True)


def test_concurrent_identical_queries_are_single_flight(metrics):
    n = 12
    query = CharacterizeQuery(kernel="mahony", arch="m33")
    answers = [None] * n
    with ServiceBroker(config=CONFIG, overrides=OVERRIDES) as broker:
        def work(i):
            answers[i] = broker.ask(query)

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    counters = metrics.as_dict()["counters"]
    assert counters["service.queries"] == n
    assert counters["service.misses"] == 1
    assert counters["service.hits"] == n - 1
    first = json.dumps(answers[0], sort_keys=True)
    assert all(json.dumps(a, sort_keys=True) == first for a in answers)


# ------------------------------------------------------ other query kinds


def test_mission_query_matches_direct_run():
    from repro.api import MissionSpec, run_mission

    with ServiceBroker(config=CONFIG) as broker:
        payload = broker.ask(MissionQuery(mission="hover", arch="m33"))
    direct = run_mission(MissionSpec(mission="hover", arch="m33"))
    assert payload["kind"] == "mission"
    assert payload["result"] == mission_record(direct)


def test_campaign_query_round_trips():
    from repro.api import CampaignSpec

    spec = CampaignSpec(
        fault="brownout", severities=(1.0,), missions=("hover",),
        kernels=(), archs=("m33",), seed=0,
    )
    with ServiceBroker(config=CONFIG) as broker:
        payload = broker.ask(CampaignQuery(spec=spec))
        again = broker.ask(CampaignQuery(spec=spec))
    assert payload["kind"] == "campaign"
    assert payload["result"]["fault"] == "brownout"
    assert payload["result"]["mission_grid"]
    assert json.dumps(again, sort_keys=True) == \
        json.dumps(payload, sort_keys=True)


# --------------------------------------------------------- broker semantics


def test_validation_errors_raise_in_the_submitting_thread():
    with ServiceBroker(config=CONFIG) as broker:
        with pytest.raises(KeyError, match="unknown kernel"):
            broker.submit(CharacterizeQuery(kernel="not-a-kernel"))
        with pytest.raises(KeyError, match="unknown arch"):
            broker.submit(CharacterizeQuery(kernel="mahony", arch="z80"))


def test_closed_broker_rejects_submissions():
    broker = ServiceBroker(config=CONFIG)
    broker.close()
    with pytest.raises(BrokerClosed):
        broker.submit(CharacterizeQuery(kernel="mahony"))
    broker.close()  # idempotent


def test_backpressure_blocks_submitters_at_max_pending(monkeypatch):
    release = threading.Event()
    broker = ServiceBroker(config=CONFIG, overrides=OVERRIDES, max_pending=2)
    original = broker._run_batch

    def gated_batch(batch):
        release.wait(30)
        original(batch)

    monkeypatch.setattr(broker, "_run_batch", gated_batch)
    query = CharacterizeQuery(kernel="mahony", arch="m33")
    tickets = [broker.submit(query)]
    # Wait for the dispatcher to pick the first ticket up and park.
    deadline = time.monotonic() + 10
    while broker._pending.qsize() > 0 and time.monotonic() < deadline:
        time.sleep(0.01)
    tickets.append(broker.submit(query))
    tickets.append(broker.submit(query))  # queue now full

    blocked = threading.Thread(
        target=lambda: tickets.append(broker.submit(query))
    )
    blocked.start()
    blocked.join(0.3)
    assert blocked.is_alive(), "submit should block while the queue is full"

    release.set()
    blocked.join(10)
    assert not blocked.is_alive()
    for ticket in tickets:
        assert broker.result(ticket, timeout=30)
    broker.close()


# --------------------------------------------------------------- the cache


def test_result_cache_lru_eviction_and_stats():
    cache = ResultCache(capacity=2)
    cache.put("a", {"v": 1})
    cache.put("b", {"v": 2})
    assert cache.get("a") == {"v": 1}   # refreshes "a"
    cache.put("c", {"v": 3})            # evicts "b", the LRU entry
    assert cache.get("b") is None
    assert "a" in cache and "c" in cache
    assert len(cache) == 2
    stats = cache.as_dict()
    assert stats["entries"] == 2
    assert stats["evictions"] == 1
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["hit_rate"] == 0.5


def test_result_cache_rejects_zero_capacity():
    with pytest.raises(ValueError):
        ResultCache(capacity=0)


def test_query_key_is_content_addressed():
    q = CharacterizeQuery(kernel="mahony")
    assert query_key(q, CONFIG) == query_key(q, CONFIG)
    assert len(query_key(q, CONFIG)) == 32
    assert query_key(q, CONFIG) != query_key(
        CharacterizeQuery(kernel="madgwick"), CONFIG
    )
    assert query_key(q, CONFIG) != query_key(
        q, HarnessConfig(reps=2, warmup_reps=0)
    )


# ------------------------------------------------------------ wire protocol


def test_wire_request_round_trip():
    q = parse_request(
        {"op": "characterize", "kernel": "mahony", "arch": "m4", "cache": "NC"}
    )
    assert q == CharacterizeQuery(kernel="mahony", arch="m4", cache="NC")
    assert parse_request(request_of(q)) == q

    m = parse_request({"op": "mission"})
    assert m == MissionQuery(mission="hover", arch="m33")
    assert parse_request(request_of(m)) == m

    c = parse_request({"op": "campaign", "fault": "brownout",
                       "severities": [0.5], "missions": ["hover"]})
    assert c.spec.fault == "brownout"
    assert parse_request(request_of(c)) == c

    with pytest.raises(ValueError, match="unknown op"):
        parse_request({"op": "frobnicate"})


def test_server_round_trip_over_tcp():
    with ServiceBroker(config=CONFIG, overrides=OVERRIDES) as broker:
        with ServiceServer(broker, port=0) as server:
            host, port = server.address
            with ServiceClient(host, port, timeout=60.0) as client:
                assert client.ping()
                response = client.query(
                    {"op": "characterize", "kernel": "mahony", "arch": "m33"}
                )
                assert response["ok"]
                assert response["kind"] == "characterize"
                assert response["result"]["kernel"] == "mahony"
                bad = client.query({"op": "characterize", "kernel": "nope"})
                assert not bad["ok"]
                assert "nope" in bad["error"]
                stats = client.stats()
                assert stats["cache"]["entries"] >= 1
                assert stats["batches"] >= 1
