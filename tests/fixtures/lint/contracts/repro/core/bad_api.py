"""Fixture violation: ``__all__`` exports a name the module never binds."""

__all__ = ["ghost"]


def real():
    """The only name this module actually defines."""
    return 1
