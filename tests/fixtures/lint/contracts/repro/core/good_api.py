"""Fixture clean twin: ``__all__`` matches the module's bindings."""

__all__ = ["real"]


def real():
    """An exported, actually-defined name."""
    return 1
