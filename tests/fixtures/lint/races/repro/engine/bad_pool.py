"""Fixture violation: a pool worker mutating module-global state."""

from concurrent.futures import ProcessPoolExecutor

_RESULTS = {}


def work(job):
    """Record a result worker-side (lost in the parent process)."""
    _RESULTS[job] = job * 2
    return job


def dispatch(jobs):
    """Fan jobs out over a process pool."""
    with ProcessPoolExecutor() as pool:
        return [pool.submit(work, job).result() for job in jobs]
