"""Fixture clean twin: workers return values, the dispatcher collates."""

from concurrent.futures import ProcessPoolExecutor


def work(job):
    """Compute and return — no shared state touched."""
    return job * 2


def dispatch(jobs):
    """Collate worker results on the dispatcher side."""
    out = {}
    with ProcessPoolExecutor() as pool:
        futures = [(job, pool.submit(work, job)) for job in jobs]
    for job, future in futures:
        out[job] = future.result()
    return out
