"""Fixture clean twin: a top-level function maps fine over the pool."""

from concurrent.futures import ProcessPoolExecutor


def double(job):
    """Top-level callables pickle by qualified name."""
    return job * 2


def dispatch(jobs):
    """Map a module-level function across pool workers."""
    with ProcessPoolExecutor() as pool:
        return list(pool.map(double, jobs))
