"""Fixture violation: an unpicklable callable mapped over a process pool."""

from concurrent.futures import ProcessPoolExecutor


def dispatch(jobs):
    """Map a lambda across pool workers (fails to pickle on spawn)."""
    with ProcessPoolExecutor() as pool:
        return list(pool.map(lambda job: job * 2, jobs))
