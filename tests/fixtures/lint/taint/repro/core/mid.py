"""Fixture: an innocent-looking intermediate hop carrying the taint."""

from repro.core.clock import stamp


def helper():
    """Derive a value from the wall clock (transitively tainted)."""
    return stamp() + 1.0
