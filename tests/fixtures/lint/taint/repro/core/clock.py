"""Fixture: a wall-clock taint source two hops from the sink."""

import time


def stamp():
    """Return a wall-clock reading (the taint source)."""
    return time.time()
