"""Fixture violation: transitively wall-clock-tainted serialized output."""

import json

from repro.core.mid import helper


def emit():
    """Serialize a report whose field is two calls from time.time()."""
    return json.dumps({"t": helper()})
