"""Fixture clean twin: the serialized value is caller-supplied data."""

import json


def emit(sample):
    """Serialize a report from an explicit argument — no ambient taint."""
    return json.dumps({"t": sample + 1.0})
