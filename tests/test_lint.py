"""Tests for the ``repro.lint`` static-analysis framework.

Covers every shipped rule with at least one violating and one clean
fixture, the suppression-pragma and baseline round trips, the
import-graph layering rule (including the synthetic ``kernels ->
engine`` rejection), and the coupling between the rule registry and
the documentation: the architecture mermaid arrows and rule table, and
the ``docs/static-analysis.md`` catalog.
"""

import json
import re
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    ALLOWED,
    Baseline,
    DEFERRED_ALLOWED,
    GROUPS,
    default_root,
    group_of,
    render_json,
    render_rule_table,
    rule_ids,
    run_lint,
    scan_root,
)

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

EXPECTED_RULES = {
    "layering", "no-wall-clock", "no-unseeded-rng", "iteration-order",
    "pool-safety", "mutable-default-args", "docstring-coverage",
    "pragma-hygiene", "facade-only-imports", "arch-constants",
    # Deep (whole-program) rules, run under --analyze deep.
    "taint-determinism", "worker-shared-state", "pool-pickle-safety",
    "api-contract",
}


def make_tree(tmp_path, files):
    """Write a synthetic ``repro`` package tree and return its root."""
    root = tmp_path / "repro"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


def lint_tree(tmp_path, files, rules):
    """Lint a synthetic tree with a rule subset; return the findings."""
    root = make_tree(tmp_path, files)
    result = run_lint(root=root, rules=rules, use_baseline=False)
    return result.findings


def rules_hit(findings):
    return {f.rule for f in findings}


# ---------------------------------------------------------------- registry


def test_registry_ships_the_documented_rules():
    assert set(rule_ids()) == EXPECTED_RULES


def test_unknown_rule_id_is_an_error():
    with pytest.raises(KeyError, match="unknown rule id"):
        run_lint(rules=["not-a-rule"])


# ------------------------------------------------------------ no-wall-clock


def test_wall_clock_flagged_outside_seams(tmp_path):
    findings = lint_tree(tmp_path, {
        "core/util.py": """
            import time
            from time import monotonic

            def stamp():
                return time.perf_counter() + monotonic()
        """,
    }, rules=["no-wall-clock"])
    assert rules_hit(findings) == {"no-wall-clock"}
    messages = " ".join(f.message for f in findings)
    assert "time.perf_counter" in messages
    assert "time.monotonic" in messages


def test_wall_clock_allowed_in_timing_seams(tmp_path):
    findings = lint_tree(tmp_path, {
        "engine/telemetry.py": """
            import time
            CLOCK = time.perf_counter
        """,
        "obs/tracer.py": """
            import time

            def now():
                return time.perf_counter()
        """,
    }, rules=["no-wall-clock"])
    assert findings == []


def test_datetime_now_flagged(tmp_path):
    findings = lint_tree(tmp_path, {
        "faults/x.py": """
            import datetime

            def stamp():
                return datetime.datetime.now()
        """,
    }, rules=["no-wall-clock"])
    assert len(findings) == 1
    assert "datetime.datetime.now" in findings[0].message


# ---------------------------------------------------------- no-unseeded-rng


def test_global_state_rng_flagged(tmp_path):
    findings = lint_tree(tmp_path, {
        "core/x.py": """
            import numpy as np
            import random
            from random import choice

            def jitter():
                return np.random.rand(3) + random.random()
        """,
    }, rules=["no-unseeded-rng"])
    messages = " ".join(f.message for f in findings)
    assert "numpy.random.rand" in messages
    assert "random.random" in messages
    assert "random.choice" in messages


def test_seeded_generators_allowed(tmp_path):
    findings = lint_tree(tmp_path, {
        "core/x.py": """
            import numpy as np
            from numpy.random import SeedSequence, default_rng

            def draw(seed):
                rng = np.random.default_rng(SeedSequence(seed))
                return rng.normal()
        """,
    }, rules=["no-unseeded-rng"])
    assert findings == []


# ---------------------------------------------------------- iteration-order


def test_unsorted_listing_flagged(tmp_path):
    findings = lint_tree(tmp_path, {
        "core/x.py": """
            import os
            from pathlib import Path

            def walk(d):
                for name in os.listdir(d):
                    print(name)
                return [p for p in Path(d).glob("*.json")]
        """,
    }, rules=["iteration-order"])
    assert len(findings) == 2
    assert all(f.rule == "iteration-order" for f in findings)


def test_sorted_and_order_free_listings_allowed(tmp_path):
    findings = lint_tree(tmp_path, {
        "core/x.py": """
            import os
            from pathlib import Path

            def walk(d):
                for name in sorted(os.listdir(d)):
                    print(name)
                return len(list(Path(d).glob("*.json")))
        """,
    }, rules=["iteration-order"])
    assert findings == []


def test_set_iteration_flagged_until_sorted(tmp_path):
    findings = lint_tree(tmp_path, {
        "core/bad.py": """
            def bad(items):
                for x in set(items):
                    print(x)
                return [y for y in {1, 2, 3}]
        """,
        "core/good.py": """
            def good(items):
                for x in sorted(set(items)):
                    print(x)
        """,
    }, rules=["iteration-order"])
    assert len(findings) == 2
    assert all(f.path == "repro/core/bad.py" for f in findings)


# -------------------------------------------------------------- pool-safety


def test_pool_module_globals_and_lambdas_flagged(tmp_path):
    findings = lint_tree(tmp_path, {
        "engine/x.py": """
            from concurrent.futures import ProcessPoolExecutor

            TOTAL = 0

            def dispatch(jobs):
                global TOTAL
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(lambda j: j, j) for j in jobs]
        """,
    }, rules=["pool-safety"])
    messages = " ".join(f.message for f in findings)
    assert "global statement (TOTAL)" in messages
    assert "unpicklable callable" in messages


def test_globals_fine_without_pools(tmp_path):
    findings = lint_tree(tmp_path, {
        "obs/x.py": """
            STATE = None

            def set_state(v):
                global STATE
                STATE = v
        """,
    }, rules=["pool-safety"])
    assert findings == []


# ----------------------------------------------------- mutable-default-args


def test_mutable_defaults_flagged(tmp_path):
    findings = lint_tree(tmp_path, {
        "core/x.py": """
            def f(a, b=[], c={}, d=set(), *, e=dict()):
                return a
        """,
    }, rules=["mutable-default-args"])
    assert len(findings) == 4
    assert all(f.rule == "mutable-default-args" for f in findings)


def test_immutable_defaults_allowed(tmp_path):
    findings = lint_tree(tmp_path, {
        "core/x.py": """
            def f(a, b=(), c=None, d="x", e=0):
                return a
        """,
    }, rules=["mutable-default-args"])
    assert findings == []


# ------------------------------------------------------- docstring-coverage


def test_docstring_gaps_flagged_in_scope(tmp_path):
    findings = lint_tree(tmp_path, {
        "engine/x.py": """
            class Public:
                def method(self):
                    return 1

                def _private(self):
                    return 2
        """,
    }, rules=["docstring-coverage"])
    messages = {f.message for f in findings}
    assert "module docstring missing" in messages
    assert "class Public missing docstring" in messages
    assert "def Public.method missing docstring" in messages
    assert len(findings) == 3  # _private is exempt


def test_docstrings_not_required_outside_scope(tmp_path):
    findings = lint_tree(tmp_path, {
        "mcu/x.py": """
            def undocumented():
                return 1
        """,
    }, rules=["docstring-coverage"])
    assert findings == []


# ------------------------------------------------- suppression + pragmas


def test_same_line_pragma_suppresses(tmp_path):
    findings = lint_tree(tmp_path, {
        "core/x.py": """
            import os

            def walk(d):
                for n in os.listdir(d):  # repro: lint-ignore[iteration-order]
                    print(n)
        """,
    }, rules=["iteration-order"])
    assert findings == []


def test_preceding_comment_pragma_suppresses(tmp_path):
    findings = lint_tree(tmp_path, {
        "core/x.py": """
            def f(
                # repro: lint-ignore[mutable-default-args]
                x=[],
            ):
                return x
        """,
    }, rules=["mutable-default-args"])
    assert findings == []


def test_bare_pragma_suppresses_all_rules(tmp_path):
    findings = lint_tree(tmp_path, {
        "core/x.py": """
            import os

            def f(d, x=[]):  # repro: lint-ignore
                return os.listdir(d), x  # repro: lint-ignore
        """,
    }, rules=["iteration-order", "mutable-default-args"])
    assert findings == []


def test_pragma_with_unknown_rule_is_a_finding(tmp_path):
    findings = lint_tree(tmp_path, {
        "core/x.py": """
            X = 1  # repro: lint-ignore[no-such-rule]
        """,
    }, rules=["pragma-hygiene"])
    assert len(findings) == 1
    assert "unknown rule 'no-such-rule'" in findings[0].message


def test_suppressed_findings_are_counted(tmp_path):
    root = make_tree(tmp_path, {
        "core/x.py": """
            def f(x=[]):  # repro: lint-ignore[mutable-default-args]
                return x
        """,
    })
    result = run_lint(root=root, rules=["mutable-default-args"],
                      use_baseline=False)
    assert result.findings == []
    assert result.suppressed == 1


# ----------------------------------------------------------------- baseline


def test_baseline_round_trip(tmp_path):
    files = {
        "core/x.py": """
            def f(x=[]):
                return x
        """,
    }
    root = make_tree(tmp_path, files)
    baseline_path = tmp_path / "baseline.json"

    first = run_lint(root=root, rules=["mutable-default-args"],
                     use_baseline=False)
    assert len(first.all_findings) == 1
    Baseline.from_findings(first.all_findings).save(baseline_path)

    second = run_lint(root=root, rules=["mutable-default-args"],
                      baseline_path=baseline_path)
    assert second.clean
    assert second.baselined == 1
    assert second.stale_baseline == []


def test_new_finding_not_absorbed_by_baseline(tmp_path):
    root = make_tree(tmp_path, {
        "core/x.py": """
            def f(x=[]):
                return x
        """,
    })
    baseline_path = tmp_path / "baseline.json"
    first = run_lint(root=root, rules=["mutable-default-args"],
                     use_baseline=False)
    Baseline.from_findings(first.all_findings).save(baseline_path)

    (root / "core" / "x.py").write_text(textwrap.dedent("""
        def f(x=[]):
            return x

        def g(y={}):
            return y
    """))
    result = run_lint(root=root, rules=["mutable-default-args"],
                      baseline_path=baseline_path)
    assert len(result.findings) == 1
    assert "g()" in result.findings[0].message
    assert result.baselined == 1


def test_stale_baseline_entries_reported(tmp_path):
    root = make_tree(tmp_path, {"core/x.py": '"""Clean."""\n'})
    baseline_path = tmp_path / "baseline.json"
    Baseline(counts={"mutable-default-args::repro/core/gone.py::x": 1}).save(
        baseline_path
    )
    result = run_lint(root=root, baseline_path=baseline_path)
    assert result.clean
    assert result.stale_baseline == [
        "mutable-default-args::repro/core/gone.py::x"
    ]


def test_baseline_fingerprints_survive_line_moves(tmp_path):
    root = make_tree(tmp_path, {
        "core/x.py": """
            def f(x=[]):
                return x
        """,
    })
    baseline_path = tmp_path / "baseline.json"
    first = run_lint(root=root, rules=["mutable-default-args"],
                     use_baseline=False)
    Baseline.from_findings(first.all_findings).save(baseline_path)

    # Shift the finding down ten lines; the fingerprint must still match.
    (root / "core" / "x.py").write_text(
        "# padding\n" * 10 + textwrap.dedent("""
            def f(x=[]):
                return x
        """)
    )
    result = run_lint(root=root, rules=["mutable-default-args"],
                      baseline_path=baseline_path)
    assert result.clean
    assert result.baselined == 1


# ----------------------------------------------------------------- layering


def test_layering_rejects_synthetic_kernels_to_engine_import(tmp_path):
    findings = lint_tree(tmp_path, {
        "attitude/evil.py": """
            from repro.engine import EngineOptions
        """,
    }, rules=["layering"])
    assert len(findings) == 1
    finding = findings[0]
    assert finding.rule == "layering"
    assert finding.path == "repro/attitude/evil.py"
    assert "'kernels' may not depend on 'engine'" in finding.message


def test_layering_rejects_deferred_import_on_non_seam_edge(tmp_path):
    findings = lint_tree(tmp_path, {
        "mcu/evil.py": """
            def sneak():
                import repro.faults
                return repro.faults
        """,
    }, rules=["layering"])
    assert len(findings) == 1
    assert "'mcu' may not depend on 'faults'" in findings[0].message


def test_layering_seam_is_deferred_only(tmp_path):
    module_level = lint_tree(tmp_path / "a", {
        "core/x.py": """
            from repro.engine import EngineOptions
        """,
    }, rules=["layering"])
    assert len(module_level) == 1
    assert "deferred-only" in module_level[0].message

    deferred = lint_tree(tmp_path / "b", {
        "core/y.py": """
            def delegate():
                from repro.engine import run_sweep_engine
                return run_sweep_engine
        """,
    }, rules=["layering"])
    assert deferred == []


def test_layering_flags_unmapped_package(tmp_path):
    findings = lint_tree(tmp_path, {
        "newpkg/x.py": """
            X = 1
        """,
    }, rules=["layering"])
    assert len(findings) == 1
    assert "not in the layer map" in findings[0].message


def test_group_of_maps_known_modules():
    assert group_of("repro.engine.executor") == "engine"
    assert group_of("repro.attitude.filters") == "kernels"
    assert group_of("repro.scalar") == "data"
    assert group_of("repro") == "cli"
    assert group_of("numpy.random") is None


def test_every_scanned_module_is_in_the_layer_map():
    for module in scan_root(default_root()):
        assert group_of(module.name) is not None, module.name


# ------------------------------------------------------- facade-only-imports


def test_facade_rule_flags_deep_imports_from_analysis(tmp_path):
    findings = lint_tree(tmp_path, {
        "analysis/study.py": """
            from repro.engine import EngineOptions

            def table():
                from repro.core.experiment import SweepSpec
                return SweepSpec, EngineOptions
        """,
    }, rules=["facade-only-imports"])
    assert rules_hit(findings) == {"facade-only-imports"}
    assert len(findings) == 2
    assert all("repro.api" in f.message for f in findings)


def test_facade_rule_passes_facade_and_building_block_imports(tmp_path):
    findings = lint_tree(tmp_path, {
        "analysis/study.py": """
            from repro.api import SweepSpec, sweep
            from repro.core.experiment_io import result_to_dict
            from repro.core.config import HarnessConfig
            from repro.mcu.arch import ARCHS
        """,
    }, rules=["facade-only-imports"])
    assert findings == []


def test_facade_rule_ignores_non_consumer_groups(tmp_path):
    findings = lint_tree(tmp_path, {
        "cli.py": """
            from repro.engine import EngineOptions
        """,
        "service/broker.py": """
            from repro.faults import run_campaign
        """,
        "api.py": """
            from repro.service import ServiceBroker
        """,
    }, rules=["facade-only-imports"])
    assert findings == []


def test_facade_rule_scans_examples_and_benchmarks_trees(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    external = {
        "examples/demo.py": "from repro.closedloop import FlappingWingRunner\n",
        "examples/ok.py": "from repro.api import run_mission\n",
        "benchmarks/bench_x.py": "from repro.core import experiment\n",
    }
    for rel, source in external.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    findings = lint_tree(tmp_path, {
        "analysis/__init__.py": "",
    }, rules=["facade-only-imports"])
    assert [f.path for f in findings] == [
        "benchmarks/bench_x.py", "examples/demo.py",
    ]
    assert all(f.rule == "facade-only-imports" for f in findings)


def test_facade_rule_skips_external_scan_without_repo_anchor(tmp_path):
    findings = lint_tree(tmp_path, {
        "analysis/__init__.py": "",
    }, rules=["facade-only-imports"])
    assert findings == []


# ------------------------------------------------------------ arch-constants


def test_arch_constants_flags_spec_outside_backends(tmp_path):
    findings = lint_tree(tmp_path, {
        "mcu/extra.py": """
            from repro.mcu.arch import ArchSpec

            M55 = ArchSpec(name="m55")
        """,
    }, rules=["arch-constants"])
    assert rules_hit(findings) == {"arch-constants"}
    assert "ArchSpec" in findings[0].message


def test_arch_constants_flags_cost_table_names(tmp_path):
    findings = lint_tree(tmp_path, {
        "engine/tables.py": """
            _SOFT_F32 = {"fadd": 30}
            _ARCH_FACTORS = {"m4": (1.0, 1.0, 1.0, 1.0)}
            FLOAT_CPI = {"fadd": 1}
        """,
    }, rules=["arch-constants"])
    assert len(findings) == 3
    assert all(f.rule == "arch-constants" for f in findings)


def test_arch_constants_allows_backends_package(tmp_path):
    findings = lint_tree(tmp_path, {
        "backends/custom.py": """
            from repro.mcu.arch import ArchSpec

            _SOFT_F32 = {"fadd": 30}
            XCORE = ArchSpec(name="xcore")
        """,
    }, rules=["arch-constants"])
    assert findings == []


def test_arch_constants_allows_function_scope_construction(tmp_path):
    findings = lint_tree(tmp_path, {
        "faults/power.py": """
            from repro.mcu.arch import PowerSpec

            def sagged(spec, factor):
                return PowerSpec(active_mw=spec.active_mw * factor)
        """,
    }, rules=["arch-constants"])
    assert findings == []


def test_arch_constants_ignores_benign_constants(tmp_path):
    findings = lint_tree(tmp_path, {
        "core/config.py": """
            DEFAULT_REPS = 3
            _HW_REVISIONS = object  # not an assignment call or table dict
        """,
    }, rules=["arch-constants"])
    # _HW_REVISIONS matches the table-name convention on purpose: naming
    # a constant like a cost table is itself the smell being policed.
    assert len(findings) == 1


def test_arch_constants_clean_on_the_real_tree():
    result = run_lint(root=SRC, rules=["arch-constants"], use_baseline=False)
    assert result.findings == []


# --------------------------------------------------- docs <-> rules coupling


def test_architecture_doc_embeds_the_rule_table_verbatim():
    doc = (REPO / "docs" / "architecture.md").read_text()
    assert render_rule_table() in doc, (
        "docs/architecture.md is out of date: paste the output of "
        "repro.lint.layering.render_rule_table()"
    )


def _mermaid_arrows():
    doc = (REPO / "docs" / "architecture.md").read_text()
    block = re.search(r"```mermaid\n(.*?)```", doc, re.DOTALL).group(1)
    solid = re.findall(r"^\s*(\w+) --> (\w+)$", block, re.MULTILINE)
    dotted = re.findall(r"^\s*(\w+) -\.->(?:\|[^|]*\|)? (\w+)$",
                        block, re.MULTILINE)
    return solid, dotted


def test_mermaid_arrows_match_the_checked_table():
    solid, dotted = _mermaid_arrows()
    assert solid and dotted, "mermaid diagram lost its arrows"
    for src, dst in solid:
        assert src in GROUPS and dst in GROUPS, (src, dst)
        assert dst in ALLOWED[src], (
            f"architecture.md draws {src} --> {dst}, which the layering "
            "rule would reject"
        )
    for src, dst in dotted:
        assert (dst in ALLOWED[src]) or ((src, dst) in DEFERRED_ALLOWED), (
            f"architecture.md draws dotted {src} -.-> {dst}, which the "
            "layering rule would reject"
        )


def test_every_deferred_seam_is_drawn_dotted():
    _, dotted = _mermaid_arrows()
    for (src, dst) in DEFERRED_ALLOWED:
        assert (src, dst) in dotted, (
            f"deferred seam {src} -> {dst} missing from the mermaid map"
        )


def test_static_analysis_doc_catalog_matches_registry():
    doc = (REPO / "docs" / "static-analysis.md").read_text()
    rows = re.findall(r"^\| `([a-z][a-z0-9-]*)` \|", doc, re.MULTILINE)
    assert set(rows) == set(rule_ids()), (
        "docs/static-analysis.md catalog and the rule registry disagree"
    )


# ---------------------------------------------------------------- reporters


def test_json_report_shape(tmp_path):
    root = make_tree(tmp_path, {
        "core/x.py": """
            def f(x=[]):
                return x
        """,
    })
    result = run_lint(root=root, rules=["mutable-default-args"],
                      use_baseline=False)
    payload = json.loads(render_json(result))
    assert payload["version"] == 1
    assert payload["summary"]["findings"] == 1
    assert payload["summary"]["clean"] is False
    finding = payload["findings"][0]
    assert finding["rule"] == "mutable-default-args"
    assert finding["path"] == "repro/core/x.py"
    assert finding["line"] > 0


def test_findings_are_reported_in_canonical_order(tmp_path):
    root = make_tree(tmp_path, {
        "core/b.py": "def f(x=[]):\n    return x\n",
        "core/a.py": "def g(y={}):\n    return y\n",
    })
    result = run_lint(root=root, rules=["mutable-default-args"],
                      use_baseline=False)
    assert [f.path for f in result.findings] == [
        "repro/core/a.py", "repro/core/b.py",
    ]


# ----------------------------------------------------------- the real repo


def test_repo_is_clean_or_fully_baselined():
    result = run_lint()
    assert result.clean, "\n".join(
        f"{f.path}:{f.line}: [{f.rule}] {f.message}" for f in result.findings
    )


def test_committed_baseline_is_empty():
    """The tree passes every rule outright; keep it that way."""
    baseline = json.loads((REPO / "lint-baseline.json").read_text())
    assert baseline["version"] == 2
    assert baseline["findings"] == {}


# ---------------------------------------------------------------------- CLI


def test_cli_lint_clean_exit(capsys):
    from repro.cli import main
    assert main(["lint", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["clean"] is True


def test_cli_lint_list(capsys):
    from repro.cli import main
    assert main(["lint", "--list"]) == 0
    out = capsys.readouterr().out
    for rule_id in EXPECTED_RULES:
        assert rule_id in out


def test_cli_lint_fails_on_findings_and_update_baseline(tmp_path, capsys):
    from repro.cli import main
    root = make_tree(tmp_path, {
        "core/x.py": """
            def f(x=[]):
                return x
        """,
    })
    baseline = tmp_path / "baseline.json"
    args = ["lint", "--root", str(root), "--baseline", str(baseline),
            "--rules", "mutable-default-args"]
    assert main(args) == 1
    assert "mutable-default-args" in capsys.readouterr().out
    assert main(args + ["--update-baseline"]) == 0
    assert baseline.exists()
    assert main(args) == 0
