"""Cross-cutting property-based tests (hypothesis) on framework invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.results import si_format
from repro.fixedpoint.qformat import Fixed, FixedPointContext, QFormat
from repro.mcu.arch import M0PLUS, M4, M33, M7
from repro.mcu.cache import CACHE_OFF, CACHE_ON, CacheModel
from repro.mcu.energy import EnergyModel
from repro.mcu.ops import OpTrace
from repro.mcu.pipeline import CycleBreakdown, PipelineModel
from repro.scalar import F32, F64, q

ARCHS = (M0PLUS, M4, M33, M7)

trace_strategy = st.builds(
    OpTrace,
    fadd=st.integers(0, 5000),
    fmul=st.integers(0, 5000),
    fdiv=st.integers(0, 500),
    fsqrt=st.integers(0, 200),
    ffma=st.integers(0, 5000),
    ffunc=st.integers(0, 100),
    ialu=st.integers(0, 5000),
    idiv=st.integers(0, 200),
    load=st.integers(0, 8000),
    store=st.integers(0, 4000),
    br_taken=st.integers(0, 1000),
    br_not=st.integers(0, 1000),
)


class TestPipelineProperties:
    @given(trace_strategy, trace_strategy)
    @settings(max_examples=40, deadline=None)
    def test_compute_cycles_additive(self, a, b):
        """Pricing is linear: cycles(a + b) == cycles(a) + cycles(b)."""
        for arch in (M4, M7):
            pm = PipelineModel(arch)
            combined = pm.compute_cycles(a + b, F32)
            separate = pm.compute_cycles(a, F32) + pm.compute_cycles(b, F32)
            assert combined == pytest.approx(separate, rel=1e-9)

    @given(trace_strategy)
    @settings(max_examples=40, deadline=None)
    def test_cycles_nonnegative_all_precisions(self, trace):
        for arch in ARCHS:
            pm = PipelineModel(arch)
            for scalar in (F32, F64, q(7, 24)):
                assert pm.compute_cycles(trace, scalar) >= 0

    @given(trace_strategy)
    @settings(max_examples=40, deadline=None)
    def test_soft_float_never_cheaper(self, trace):
        """M0+ (no FPU) never beats the M4 on float-bearing traces at
        equal per-op accounting (before clock scaling)."""
        m0 = PipelineModel(M0PLUS).compute_cycles(trace, F32)
        m4 = PipelineModel(M4).compute_cycles(trace, F32)
        assert m0 >= m4 * 0.99

    @given(trace_strategy, st.integers(1000, 10**6), st.integers(100, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_cache_off_never_faster(self, trace, code, data):
        for arch in (M33, M7):
            pm = PipelineModel(arch)
            on = pm.cycles(trace, F32, CACHE_ON, code, data).total
            off = pm.cycles(trace, F32, CACHE_OFF, code, data).total
            assert off >= on * 0.999


class TestCacheProperties:
    @given(st.integers(1, 10**7), st.integers(1, 10**7))
    @settings(max_examples=50, deadline=None)
    def test_hit_rate_antitone_in_footprint(self, a, b):
        small, big = min(a, b), max(a, b)
        cm = CacheModel(M7, CACHE_ON)
        assert cm.dmem_hit_rate(small) >= cm.dmem_hit_rate(big)

    @given(st.integers(0, 10**6), st.integers(0, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_stalls_monotone(self, n1, n2):
        small, big = min(n1, n2), max(n1, n2)
        cm = CacheModel(M33, CACHE_OFF)
        assert cm.dmem_stalls(small, 10000) <= cm.dmem_stalls(big, 10000)


class TestEnergyProperties:
    @given(trace_strategy, st.floats(1.0, 1e7), st.floats(0.0, 1e7),
           st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_energy_consistency(self, trace, compute, stalls, activity):
        for arch in ARCHS:
            em = EnergyModel(arch)
            bd = CycleBreakdown(compute, stalls / 2, stalls / 2)
            report = em.report(trace, bd, activity)
            assert report.energy_j == pytest.approx(
                report.avg_power_w * report.latency_s
            )
            assert report.peak_power_w >= report.avg_power_w > 0

    @given(trace_strategy, st.floats(1.0, 1e6))
    @settings(max_examples=30, deadline=None)
    def test_stalls_never_raise_power(self, trace, compute):
        em = EnergyModel(M7)
        busy = em.average_power_w(trace, CycleBreakdown(compute, 0, 0), 0.5)
        stalled = em.average_power_w(
            trace, CycleBreakdown(compute, compute, compute), 0.5
        )
        assert stalled <= busy


class TestFixedPointProperties:
    FMT = QFormat(7, 24)

    def _fx(self, value, ctx):
        return Fixed.from_float(value, self.FMT, ctx)

    @given(st.floats(-60, 60), st.floats(-60, 60))
    @settings(max_examples=60)
    def test_addition_commutes(self, a, b):
        ctx = FixedPointContext()
        lhs = self._fx(a, ctx) + self._fx(b, ctx)
        rhs = self._fx(b, ctx) + self._fx(a, ctx)
        assert lhs.raw == rhs.raw

    @given(st.floats(-10, 10), st.floats(-10, 10))
    @settings(max_examples=60)
    def test_multiplication_commutes(self, a, b):
        ctx = FixedPointContext()
        lhs = self._fx(a, ctx) * self._fx(b, ctx)
        rhs = self._fx(b, ctx) * self._fx(a, ctx)
        assert lhs.raw == rhs.raw

    @given(st.floats(-100, 100))
    @settings(max_examples=60)
    def test_roundtrip_within_resolution(self, x):
        ctx = FixedPointContext()
        v = self._fx(x, ctx)
        if not ctx.failed:
            assert abs(float(v) - x) <= self.FMT.resolution

    @given(st.floats(-50, 50))
    @settings(max_examples=60)
    def test_negation_involutive(self, x):
        ctx = FixedPointContext()
        v = self._fx(x, ctx)
        assert (-(-v)).raw == v.raw

    @given(st.integers(1, 30), st.floats(0.0, 1e6))
    @settings(max_examples=60)
    def test_saturation_never_exceeds_format(self, int_bits, x):
        fmt = QFormat(int_bits, 31 - int_bits)
        ctx = FixedPointContext()
        v = Fixed.from_float(x, fmt, ctx)
        assert fmt.min_raw <= v.raw <= fmt.max_raw


class TestFormatting:
    @given(st.floats(0.0, 1e9))
    @settings(max_examples=60)
    def test_si_format_total(self, x):
        text = si_format(x)
        assert isinstance(text, str) and len(text) <= 8

    def test_si_format_bands(self):
        assert si_format(1_500_000).endswith("M")
        assert si_format(1_500).endswith("K")
        assert "K" not in si_format(999)
