"""Tests for the LO-RANSAC robust estimation wrapper."""

import numpy as np
import pytest

from repro.datasets.pose import (
    make_absolute_problem,
    make_relative_problem,
    rotation_angle_deg,
)
from repro.mcu.ops import OpCounter
from repro.pose.ransac import (
    AbsolutePoseAdapter,
    RansacConfig,
    RelativePoseAdapter,
    _required_iterations,
    lo_ransac,
)

CFG = RansacConfig(threshold_px=2.0, seed=7)


class TestAdaptiveStopping:
    def test_perfect_inliers_need_no_more(self):
        assert _required_iterations(1.0, 5, 0.99) == 0.0

    def test_zero_inliers_is_infinite(self):
        assert _required_iterations(0.0, 5, 0.99) == np.inf

    def test_bigger_samples_need_more_iterations(self):
        w = 0.7
        assert _required_iterations(w, 8, 0.99) > _required_iterations(w, 2, 0.99)

    def test_lower_inlier_ratio_needs_more(self):
        assert _required_iterations(0.5, 5, 0.99) > _required_iterations(0.9, 5, 0.99)


class TestRelativeRansac:
    @pytest.mark.parametrize("minimal,upright,planar", [
        ("5pt", False, False),
        ("u3pt", True, False),
        ("up2pt", True, True),
    ])
    def test_recovers_pose_with_outliers(self, minimal, upright, planar):
        successes = 0
        for seed in range(5):
            prob = make_relative_problem(
                n_points=24, noise_px=0.5, outlier_ratio=0.25,
                upright=upright, planar=planar, seed=seed,
            )
            result = lo_ransac(
                OpCounter(), RelativePoseAdapter(prob.x1, prob.x2, minimal=minimal),
                CFG,
            )
            if result.model is not None and rotation_angle_deg(
                result.model[0], prob.r_true
            ) < 3.0:
                successes += 1
        assert successes >= 4

    def test_inlier_mask_identifies_outliers(self):
        prob = make_relative_problem(n_points=24, noise_px=0.3,
                                     outlier_ratio=0.25, seed=1)
        result = lo_ransac(
            OpCounter(), RelativePoseAdapter(prob.x1, prob.x2, minimal="5pt"), CFG
        )
        # Most found inliers must be true inliers.
        found = result.inlier_mask
        precision = (found & prob.inlier_mask).sum() / max(found.sum(), 1)
        assert precision > 0.85

    def test_upright_solvers_need_fewer_iterations(self):
        """Fig. 5(d): minimal sample size drives the iteration count."""
        iters = {}
        for minimal, upright, planar in (("5pt", False, False), ("up2pt", True, True)):
            total = 0
            for seed in range(5):
                prob = make_relative_problem(
                    n_points=24, noise_px=0.5, outlier_ratio=0.25,
                    upright=upright, planar=planar, seed=seed,
                )
                result = lo_ransac(
                    OpCounter(),
                    RelativePoseAdapter(prob.x1, prob.x2, minimal=minimal),
                    CFG,
                )
                total += result.iterations
            iters[minimal] = total / 5
        assert iters["up2pt"] < iters["5pt"]

    def test_lo_runs_bounded(self):
        prob = make_relative_problem(n_points=24, noise_px=0.5,
                                     outlier_ratio=0.25, seed=2)
        cfg = RansacConfig(threshold_px=2.0, max_lo_runs=2, seed=0)
        result = lo_ransac(
            OpCounter(), RelativePoseAdapter(prob.x1, prob.x2, minimal="5pt"), cfg
        )
        assert result.lo_runs <= 2

    def test_unknown_minimal_rejected(self):
        prob = make_relative_problem(seed=0)
        with pytest.raises(ValueError):
            RelativePoseAdapter(prob.x1, prob.x2, minimal="7pt")

    def test_max_iterations_respected(self):
        prob = make_relative_problem(n_points=24, noise_px=0.5,
                                     outlier_ratio=0.4, seed=3)
        cfg = RansacConfig(threshold_px=1.0, max_iterations=7, seed=0)
        result = lo_ransac(
            OpCounter(), RelativePoseAdapter(prob.x1, prob.x2, minimal="5pt"), cfg
        )
        assert result.iterations <= 7


class TestAbsoluteRansac:
    @pytest.mark.parametrize("minimal,upright", [("p3p", False), ("up2p", True)])
    def test_recovers_pose_with_outliers(self, minimal, upright):
        successes = 0
        for seed in range(5):
            prob = make_absolute_problem(
                n_points=24, noise_px=0.5, outlier_ratio=0.25,
                upright=upright, seed=seed,
            )
            result = lo_ransac(
                OpCounter(),
                AbsolutePoseAdapter(prob.points_world, prob.points_image,
                                    minimal=minimal),
                CFG,
            )
            if result.model is not None and rotation_angle_deg(
                result.model[0], prob.r_true
            ) < 3.0:
                successes += 1
        assert successes >= 4

    def test_local_optimization_improves_or_preserves_score(self):
        prob = make_absolute_problem(n_points=30, noise_px=0.5,
                                     outlier_ratio=0.25, seed=4)
        adapter = AbsolutePoseAdapter(prob.points_world, prob.points_image)
        with_lo = lo_ransac(OpCounter(), adapter, RansacConfig(
            threshold_px=2.0, seed=1, local_optimization=True))
        without = lo_ransac(OpCounter(), adapter, RansacConfig(
            threshold_px=2.0, seed=1, local_optimization=False,
            final_refinement=False))
        assert with_lo.score >= without.score

    def test_inlier_ratio_property(self):
        prob = make_absolute_problem(n_points=20, noise_px=0.3,
                                     outlier_ratio=0.25, seed=5)
        result = lo_ransac(
            OpCounter(),
            AbsolutePoseAdapter(prob.points_world, prob.points_image), CFG,
        )
        assert 0.5 < result.inlier_ratio <= 1.0
