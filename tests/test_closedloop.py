"""Tests for the closed-loop extension (simulators, missions, runners)."""

import numpy as np
import pytest

from repro.closedloop.missions import (
    HoverMission,
    SteeringCourse,
    WaypointMission,
    score_trajectory,
)
from repro.closedloop.runner import FlappingWingRunner, StriderRunner
from repro.closedloop.simulator import FlappingWingBody, WaterStrider
from repro.mcu.arch import M0PLUS, M4, M33


class TestFlappingWingBody:
    def test_hover_thrust_balances_gravity(self):
        body = FlappingWingBody(disturbance_force=0.0, seed=0)
        body.reset(pos=np.array([0.0, 0.0, 0.3]))
        w = body.mass * 9.81
        for _ in range(200):
            body.step(w, np.zeros(3), 1e-4)
        assert abs(body.state.pos[2] - 0.3) < 0.01
        assert np.linalg.norm(body.state.vel) < 0.1

    def test_no_thrust_falls(self):
        body = FlappingWingBody(disturbance_force=0.0)
        body.reset(pos=np.array([0.0, 0.0, 0.5]))
        for _ in range(2000):
            body.step(0.0, np.zeros(3), 1e-4)
        assert body.state.pos[2] < 0.4

    def test_moment_produces_rotation(self):
        body = FlappingWingBody(disturbance_force=0.0)
        body.reset()
        for _ in range(100):
            body.step(body.mass * 9.81, np.array([1e-6, 0.0, 0.0]), 1e-4)
        assert body.state.tilt_rad > 0.01

    def test_reset_with_tilt(self):
        body = FlappingWingBody()
        state = body.reset(tilt_rad=0.2)
        assert state.tilt_rad == pytest.approx(0.2, abs=1e-9)

    def test_rotation_stays_orthonormal(self):
        body = FlappingWingBody(seed=3)
        body.reset(tilt_rad=0.1)
        for _ in range(500):
            body.step(body.mass * 9.81, np.array([2e-7, -1e-7, 5e-8]), 1e-4)
        r = body.state.rot
        assert np.allclose(r @ r.T, np.eye(3), atol=1e-9)

    def test_imu_readout_shapes_and_noise(self):
        body = FlappingWingBody(seed=1)
        body.reset()
        g1, a1 = body.read_imu()
        g2, a2 = body.read_imu()
        assert g1.shape == (3,) and a1.shape == (3,)
        assert not np.array_equal(g1, g2)  # noise differs per read

    def test_tof_reads_altitude(self):
        body = FlappingWingBody(seed=2)
        body.reset(pos=np.array([0.0, 0.0, 0.42]))
        readings = [body.read_tof() for _ in range(50)]
        assert np.mean(readings) == pytest.approx(0.42, abs=0.01)


class TestWaterStrider:
    def test_surge_force_accelerates(self):
        strider = WaterStrider(seed=0)
        strider.reset()
        for _ in range(200):
            strider.step(1e-3, 0.0, 1e-3)
        assert strider.state.surge > 0.05
        assert strider.state.x > 0.0

    def test_drag_limits_speed(self):
        strider = WaterStrider(seed=0)
        strider.reset()
        speeds = []
        for _ in range(3000):
            strider.step(1e-3, 0.0, 1e-3)
            speeds.append(strider.state.surge)
        # Terminal velocity: the last speeds stop growing.
        assert speeds[-1] - speeds[-500] < 0.01

    def test_yaw_torque_turns(self):
        strider = WaterStrider(seed=0)
        strider.reset()
        for _ in range(200):
            strider.step(0.0, 1e-7, 1e-3)
        assert strider.state.heading > 0.01

    def test_sensors(self):
        strider = WaterStrider(seed=1)
        strider.reset(heading=0.5)
        assert np.mean([strider.read_compass() for _ in range(50)]) == pytest.approx(0.5, abs=0.02)


class TestMissionScoring:
    def test_good_trajectory_completes(self):
        score = score_trajectory(np.full(100, 0.01), abort_threshold=0.5,
                                 success_rms=0.05)
        assert score["completed"]

    def test_abort_on_excursion(self):
        errors = np.full(100, 0.01)
        errors[50] = 0.9
        score = score_trajectory(errors, abort_threshold=0.5, success_rms=0.05)
        assert not score["completed"]

    def test_rms_failure(self):
        score = score_trajectory(np.full(100, 0.2), abort_threshold=0.5,
                                 success_rms=0.05)
        assert not score["completed"]

    def test_waypoint_schedule(self):
        mission = WaypointMission()
        first = mission.reference(0.0)
        last = mission.reference(mission.duration_s)
        assert not np.array_equal(first, last)

    def test_steering_reference_profile(self):
        course = SteeringCourse()
        assert course.reference(0.2) == 0.0
        assert course.reference(1.5) > 0.5


class TestClosedLoopRunners:
    def test_hover_succeeds_on_m33(self):
        result = FlappingWingRunner(arch=M33).run(HoverMission())
        assert result.completed
        assert result.deadline_hit_rate == 1.0
        assert result.compute_energy_j > 0

    def test_same_flight_less_energy_on_m33_than_m4(self):
        """Task metrics identical, compute energy ~3x apart — the
        co-design signal kernel tables alone already hint at."""
        r33 = FlappingWingRunner(arch=M33).run(HoverMission())
        r4 = FlappingWingRunner(arch=M4).run(HoverMission())
        assert r33.completed and r4.completed
        assert r33.path_error_rms_m == pytest.approx(r4.path_error_rms_m, rel=0.2)
        assert r4.compute_energy_j > 2 * r33.compute_energy_j

    def test_m0plus_cannot_hold_the_rate(self):
        """Soft-float compute latency exceeds the loop period: the runner
        degrades the control rate and the task suffers — compute autonomy
        limiting flight, end to end."""
        result = FlappingWingRunner(arch=M0PLUS).run(HoverMission())
        assert result.deadline_hit_rate < 0.5
        assert result.effective_rate_hz < 1200  # nominal is 2000 Hz
        capable = FlappingWingRunner(arch=M33).run(HoverMission())
        assert result.path_error_rms_m > capable.path_error_rms_m

    def test_waypoint_mission(self):
        result = FlappingWingRunner(arch=M33).run(WaypointMission())
        assert result.completed
        assert result.path_error_max_m < 0.6

    def test_strider_steering_course(self):
        result = StriderRunner(arch=M33).run(SteeringCourse())
        assert result.completed
        assert result.path_error_rms_m < 0.25

    def test_mission_result_fields(self):
        result = StriderRunner(arch=M4).run(SteeringCourse(duration_s=0.5))
        assert result.duration_s > 0
        assert 0 <= result.deadline_hit_rate <= 1
        assert result.compute_energy_mj == pytest.approx(result.compute_energy_j * 1e3)


class TestMissionRegistry:
    def test_builtins_are_registered(self):
        from repro.closedloop import MISSION_NAMES, mission_names

        assert set(MISSION_NAMES) <= set(mission_names())
        assert {"hover", "waypoints", "steer"} <= set(mission_names())

    def test_unknown_mission_raises_typed_error_with_suggestion(self):
        from repro.closedloop import MissionKeyError
        from repro.closedloop.missions import mission_entry

        with pytest.raises(MissionKeyError) as excinfo:
            mission_entry("hoover")
        err = excinfo.value
        assert isinstance(err, KeyError)
        assert err.requested == "hoover"
        assert err.suggestion == "hover"
        assert "did you mean 'hover'?" in str(err)

    def test_spec_validation_surfaces_the_typed_error(self):
        from repro.closedloop import MissionKeyError, MissionSpec

        with pytest.raises(MissionKeyError, match="did you mean"):
            MissionSpec(mission="waypointss").validated()

    def test_register_custom_mission_end_to_end(self):
        from repro.closedloop import register_mission
        from repro.closedloop.missions import (
            mission_names,
            unregister_mission,
        )
        from repro.closedloop.runner import make_runner

        register_mission(
            "blink-hover", lambda: HoverMission(duration_s=0.05),
            control_rate_hz=500.0, runner="flapping",
        )
        try:
            assert "blink-hover" in mission_names()
            with pytest.raises(ValueError, match="already registered"):
                register_mission("blink-hover", HoverMission)
            runner = make_runner("blink-hover", "m33")
            assert isinstance(runner, FlappingWingRunner)
            assert runner.control_period == pytest.approx(1 / 500.0)
        finally:
            unregister_mission("blink-hover")
        assert "blink-hover" not in mission_names()

    def test_register_rejects_bad_arguments(self):
        from repro.closedloop import register_mission

        with pytest.raises(ValueError, match="non-empty"):
            register_mission("", HoverMission)
        with pytest.raises(ValueError, match="runner kind"):
            register_mission("x-run", HoverMission, runner="rover")
        with pytest.raises(ValueError, match="control_rate_hz"):
            register_mission("x-rate", HoverMission, control_rate_hz=0)
