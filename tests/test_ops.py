"""Tests for the operation-trace substrate (repro.mcu.ops)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mcu.ops import ALL_KINDS, OpCounter, OpTrace, delta


def test_empty_trace_is_zero():
    t = OpTrace()
    assert t.total == 0
    assert t.n_float == 0
    assert t.n_int == 0
    assert t.n_mem == 0
    assert t.n_branch == 0


def test_category_sums():
    t = OpTrace(fadd=3, fmul=2, ialu=5, load=7, store=1, br_taken=4, call=1)
    assert t.n_float == 5
    assert t.n_int == 5
    assert t.n_mem == 8
    assert t.n_branch == 5
    assert t.total == 23


def test_mix_matches_categories():
    t = OpTrace(fdiv=2, imul=3, load=4, br_not=5)
    mix = t.mix()
    assert mix == {"F": 2, "I": 3, "M": 4, "B": 5}


def test_addition_is_fieldwise():
    a = OpTrace(fadd=1, load=2)
    b = OpTrace(fadd=3, store=4)
    c = a + b
    assert c.fadd == 4
    assert c.load == 2
    assert c.store == 4
    # operands untouched
    assert a.fadd == 1 and b.fadd == 3


def test_inplace_addition():
    a = OpTrace(fmul=2)
    a += OpTrace(fmul=5, idiv=1)
    assert a.fmul == 7
    assert a.idiv == 1


def test_scaled_rounds_counts():
    t = OpTrace(fadd=10, load=3)
    half = t.scaled(0.5)
    assert half.fadd == 5
    assert half.load == 2  # round(1.5) banker's rounds to 2


def test_copy_is_independent():
    t = OpTrace(fadd=1)
    c = t.copy()
    c.fadd = 99
    assert t.fadd == 1


def test_delta():
    before = OpTrace(fadd=2, load=5)
    after = OpTrace(fadd=7, load=5, store=3)
    d = delta(before, after)
    assert d.fadd == 5
    assert d.load == 0
    assert d.store == 3


@given(
    st.lists(st.sampled_from(ALL_KINDS), min_size=0, max_size=60),
)
def test_counter_raw_increments_sum_to_total(kinds):
    c = OpCounter()
    for kind in kinds:
        if kind in ("br_taken", "br_not"):
            c.branch(taken=(kind == "br_taken"))
        else:
            getattr(c, kind)()
    assert c.trace.total == len(kinds)


@given(st.integers(min_value=1, max_value=200))
def test_vec_dot_scales_linearly(n):
    c = OpCounter()
    c.vec_dot(n)
    assert c.trace.ffma == n
    assert c.trace.load == 2 * n


@given(st.integers(min_value=1, max_value=40), st.integers(min_value=1, max_value=40))
def test_mat_vec_counts(m, n):
    c = OpCounter()
    c.mat_vec(m, n)
    assert c.trace.ffma == m * n
    assert c.trace.store == m


@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=12),
)
def test_mat_mat_counts(m, k, n):
    c = OpCounter()
    c.mat_mat(m, k, n)
    assert c.trace.ffma == m * k * n
    assert c.trace.store == m * n


def test_quat_mul_recipe():
    c = OpCounter()
    c.quat_mul()
    assert c.trace.fmul == 16
    assert c.trace.fadd == 12


def test_flop_mix_memory_proportional():
    c = OpCounter()
    c.flop_mix(add=8, mul=8, div=2, sqrt=2)
    assert c.trace.load == 20
    assert c.trace.store == 5


def test_loop_overhead_zero_iterations():
    c = OpCounter()
    c.loop_overhead(0)
    assert c.trace.total == 0


def test_loop_overhead_branches():
    c = OpCounter()
    c.loop_overhead(10)
    assert c.trace.br_taken == 9
    assert c.trace.br_not == 1


def test_snapshot_is_copy():
    c = OpCounter()
    c.fadd(3)
    snap = c.snapshot()
    c.fadd(2)
    assert snap.fadd == 3
    assert c.trace.fadd == 5


def test_reset():
    c = OpCounter()
    c.fmul(10)
    c.reset()
    assert c.trace.total == 0


def test_absorb():
    c = OpCounter()
    c.absorb(OpTrace(fadd=4, br_taken=1))
    assert c.trace.fadd == 4
    assert c.trace.br_taken == 1


def test_vec_normalize_includes_sqrt_and_div():
    c = OpCounter()
    c.vec_normalize(3)
    assert c.trace.fsqrt == 1
    assert c.trace.fdiv == 1


@given(st.floats(min_value=0.0, max_value=4.0))
def test_scaled_never_negative(factor):
    t = OpTrace(fadd=7, load=3, br_taken=2)
    s = t.scaled(factor)
    assert s.fadd >= 0 and s.load >= 0 and s.br_taken >= 0
