"""Tests for the counted linear-algebra layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mcu import linalg
from repro.mcu.ops import OpCounter


def rand(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


class TestResultsMatchNumpy:
    def test_matmul(self):
        c = OpCounter()
        a, b = rand((4, 5)), rand((5, 3), 1)
        assert np.allclose(linalg.matmul(c, a, b), a @ b)
        assert c.trace.ffma == 4 * 5 * 3

    def test_matvec(self):
        c = OpCounter()
        a, x = rand((4, 5)), rand(5, 1)
        assert np.allclose(linalg.matvec(c, a, x), a @ x)

    def test_lu_solve(self):
        c = OpCounter()
        a = rand((5, 5)) + 5 * np.eye(5)
        b = rand(5, 1)
        assert np.allclose(linalg.lu_solve(c, a, b), np.linalg.solve(a, b))

    def test_cholesky_and_solve(self):
        c = OpCounter()
        m = rand((4, 4))
        spd = m @ m.T + 4 * np.eye(4)
        l_factor = linalg.cholesky(c, spd)
        assert np.allclose(l_factor @ l_factor.T, spd)
        b = rand(4, 2)
        x = linalg.cholesky_solve(c, l_factor, b)
        assert np.allclose(spd @ x, b)

    def test_inverse(self):
        c = OpCounter()
        a = rand((3, 3)) + 3 * np.eye(3)
        assert np.allclose(linalg.inverse(c, a) @ a, np.eye(3), atol=1e-10)

    def test_qr(self):
        c = OpCounter()
        a = rand((6, 4))
        q_mat, r_mat = linalg.qr(c, a)
        assert np.allclose(q_mat @ r_mat, a)

    def test_svd(self):
        c = OpCounter()
        a = rand((6, 4))
        u, s, vt = linalg.svd(c, a)
        assert np.allclose(u @ np.diag(s) @ vt, a)

    def test_eig_sym(self):
        c = OpCounter()
        m = rand((4, 4))
        sym = (m + m.T) / 2
        w, v = linalg.eig_sym(c, sym)
        assert np.allclose(v @ np.diag(w) @ v.T, sym, atol=1e-8)

    def test_eig_general(self):
        c = OpCounter()
        a = rand((5, 5))
        w, v = linalg.eig_general(c, a)
        assert np.allclose(a @ v, v * w, atol=1e-8)

    def test_nullspace_vector(self):
        c = OpCounter()
        # Rank-deficient 4x5 system.
        a = rand((4, 5))
        v = linalg.nullspace_vector(c, a)
        assert np.linalg.norm(a @ v) < 1e-8
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_gauss_jordan_reduces_to_identity_block(self):
        c = OpCounter()
        a = np.hstack([rand((4, 4)) + 4 * np.eye(4), rand((4, 2), 1)])
        red = linalg.gauss_jordan(c, a)
        assert np.allclose(red[:, :4], np.eye(4), atol=1e-10)

    def test_gauss_jordan_singular_raises(self):
        c = OpCounter()
        a = np.zeros((3, 5))
        with pytest.raises(np.linalg.LinAlgError):
            linalg.gauss_jordan(c, a)

    def test_poly_roots(self):
        c = OpCounter()
        # (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6
        roots = linalg.poly_roots(c, np.array([1.0, -6.0, 11.0, -6.0]))
        assert sorted(np.real(roots)) == pytest.approx([1.0, 2.0, 3.0])

    def test_quadratic_roots(self):
        c = OpCounter()
        roots = linalg.quadratic_roots(c, 1.0, -3.0, 2.0)
        assert sorted(roots) == pytest.approx([1.0, 2.0])

    def test_quadratic_no_real_roots(self):
        c = OpCounter()
        assert len(linalg.quadratic_roots(c, 1.0, 0.0, 1.0)) == 0

    def test_quartic_roots_real_only(self):
        c = OpCounter()
        # (x^2-1)(x^2+1): real roots +/-1
        roots = linalg.quartic_roots(c, np.array([1.0, 0, 0, 0, -1.0]))
        assert sorted(roots) == pytest.approx([-1.0, 1.0])

    def test_gauss_newton_step_reduces_residual(self):
        c = OpCounter()
        jac = rand((10, 3))
        r = rand(10, 2)
        dx = linalg.gauss_newton_step(c, jac, r)
        assert np.linalg.norm(r + jac @ dx) < np.linalg.norm(r)

    def test_vector_helpers(self):
        c = OpCounter()
        x, y = rand(5), rand(5, 1)
        assert linalg.dot(c, x, y) == pytest.approx(float(x @ y))
        assert linalg.norm(c, x) == pytest.approx(float(np.linalg.norm(x)))
        assert np.allclose(linalg.add(c, x, y), x + y)
        assert np.allclose(linalg.sub(c, x, y), x - y)
        assert np.allclose(linalg.scale(c, 2.0, x), 2 * x)
        assert np.allclose(linalg.outer(c, x, y), np.outer(x, y))
        assert np.allclose(linalg.cross(c, x[:3], y[:3]), np.cross(x[:3], y[:3]))
        assert np.allclose(linalg.transpose(c, rand((3, 4))), rand((3, 4)).T)


class TestOpAccounting:
    def test_every_routine_records_ops(self):
        ops_per_call = {}
        a44 = rand((4, 4)) + 4 * np.eye(4)
        for name, call in [
            ("matmul", lambda c: linalg.matmul(c, rand((4, 4)), rand((4, 4)))),
            ("lu_solve", lambda c: linalg.lu_solve(c, a44, rand(4))),
            ("svd", lambda c: linalg.svd(c, rand((6, 4)))),
            ("qr", lambda c: linalg.qr(c, rand((6, 4)))),
            ("eig_general", lambda c: linalg.eig_general(c, rand((5, 5)))),
            ("poly_roots", lambda c: linalg.poly_roots(c, np.array([1.0, 0, -1.0]))),
        ]:
            c = OpCounter()
            call(c)
            ops_per_call[name] = c.trace.total
        assert all(v > 0 for v in ops_per_call.values())

    @given(st.integers(min_value=2, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_svd_cost_grows_with_size(self, n):
        c_small, c_big = OpCounter(), OpCounter()
        linalg.svd(c_small, rand((n, n)))
        linalg.svd(c_big, rand((2 * n, 2 * n)))
        assert c_big.trace.total > c_small.trace.total

    def test_linear_solver_scales_linearly_in_rows(self):
        """The Fig. 5 observation: SVD-based solvers scale with N."""
        c8, c32 = OpCounter(), OpCounter()
        linalg.nullspace_vector(c8, rand((8, 9)))
        linalg.nullspace_vector(c32, rand((32, 9)))
        ratio = c32.trace.total / c8.trace.total
        assert 1.5 < ratio < 4.5

    def test_small_poly_cheaper_than_companion(self):
        c_small, c_big = OpCounter(), OpCounter()
        coeffs6 = np.array([1.0, 0, -3, 0, 1, 0, 0.1])
        linalg.small_poly_roots(c_small, coeffs6)
        # force companion path via degree 12
        coeffs12 = np.zeros(13)
        coeffs12[0] = 1.0
        coeffs12[-1] = -1.0
        linalg.poly_roots(c_big, coeffs12)
        assert c_small.trace.total < c_big.trace.total
