"""Tests for ExperimentIO (JSON/CSV persistence of sweeps)."""

import json

import pytest

from repro.core.config import HarnessConfig
from repro.core.experiment import SweepSpec, run_sweep
from repro.core.experiment_io import (
    load_results_csv,
    load_results_json,
    save_results_csv,
    save_results_json,
)
from repro.mcu.arch import M4


@pytest.fixture(scope="module")
def sweep():
    spec = SweepSpec(
        kernels=["mahony", "fly-lqr"],
        archs=[M4],
        config=HarnessConfig(reps=2, warmup_reps=0),
        overrides={"mahony": {"n_samples": 50}, "fly-lqr": {"n_steps": 50}},
    )
    return run_sweep(spec)


class TestJsonRoundtrip:
    def test_roundtrip_preserves_everything(self, sweep, tmp_path):
        path = save_results_json(sweep, tmp_path / "results.json")
        again = load_results_json(path)
        assert len(again) == len(sweep)
        for orig in sweep.results:
            loaded = again.get(orig.kernel, orig.arch, orig.cache)
            assert loaded is not None
            assert loaded.mean_cycles == orig.mean_cycles
            assert loaded.mean_energy_j == orig.mean_energy_j
            assert loaded.work_units == orig.work_units
            assert loaded.runs[0].trace.as_dict() == orig.runs[0].trace.as_dict()

    def test_format_version_checked(self, sweep, tmp_path):
        path = save_results_json(sweep, tmp_path / "results.json")
        data = json.loads(path.read_text())
        data["format_version"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="format version"):
            load_results_json(path)


class TestCsvExport:
    def test_one_row_per_configuration(self, sweep, tmp_path):
        path = save_results_csv(sweep, tmp_path / "results.csv")
        rows = load_results_csv(path)
        assert len(rows) == len(sweep)
        assert {r["kernel"] for r in rows} == {"mahony", "fly-lqr"}

    def test_summary_values_match(self, sweep, tmp_path):
        path = save_results_csv(sweep, tmp_path / "results.csv")
        rows = load_results_csv(path)
        row = next(r for r in rows if r["kernel"] == "mahony" and r["cache"] == "C")
        orig = sweep.get("mahony", "m4", "C")
        assert float(row["unit_latency_us"]) == pytest.approx(orig.unit_latency_us)
        assert row["valid"] == "True"
        assert int(row["reps"]) == 2
