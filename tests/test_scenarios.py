"""Tests for ``repro.scenarios``: tiered generation + campaign execution.

The load-bearing guarantees: Tier-B generation is a pure function of
``(seed, index)`` (byte-identical serialization across runs, prefixes,
and process boundaries), and campaign execution over a scenario set is
byte-identical across ``jobs`` counts.  Everything else — validation,
profiles, Pareto/failure reports, the Tier-A registry — rides along.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.scenarios import (
    GustHoverMission,
    ScenarioGenerator,
    ScenarioSet,
    ScenarioSpec,
    build_report,
    failure_rates,
    flatten_agents,
    generate_scenarios,
    mission_from_profile,
    pareto_front,
    plan_mission_jobs,
    run_scenarios,
    tier_a_names,
    tier_a_set,
    validate_profile,
)

# ------------------------------------------------------------ fixtures


def _tiny_hover(duration=0.05):
    return {
        "kind": "hover", "name": "h", "duration_s": duration,
        "control_rate_hz": 500.0,
        "gusts": [[0.01, 0.02, 0.02, 0.0, 0.01]],
    }


def _tiny_set() -> ScenarioSet:
    """A handmade three-scenario set that runs in well under a second."""
    swarm = {
        "kind": "swarm", "name": "sw",
        "agents": [
            _tiny_hover(),
            {"kind": "steer", "name": "s", "duration_s": 0.2,
             "control_rate_hz": 100.0},
        ],
    }
    return ScenarioSet(
        scenarios=(
            ScenarioSpec(name="t-hover", tier="b", arch="m33",
                         mission=_tiny_hover(), kernels=("mahony",),
                         scalar="f32", fault="brownout", severity=0.5,
                         seed=11),
            ScenarioSpec(name="t-kernel", tier="b", arch="m4",
                         mission=None, kernels=("fly-lqr",),
                         scalar="f64", fault="dvfs", severity=0.4, seed=3),
            ScenarioSpec(name="t-swarm", tier="b", arch="m33",
                         mission=swarm, scalar="f32", seed=5),
        ),
        tier="b", seed=1, generator="handmade",
    ).validated()


def _canonical(report: dict) -> str:
    return json.dumps(report, indent=2, sort_keys=True)


# ------------------------------------------------------ specs and sets


def test_spec_roundtrip_and_key_ignores_name():
    spec = _tiny_set().scenarios[0]
    again = ScenarioSpec.from_dict(spec.to_dict())
    assert again == spec
    renamed = ScenarioSpec.from_dict({**spec.to_dict(), "name": "other"})
    assert renamed.key() == spec.key()
    retuned = ScenarioSpec.from_dict({**spec.to_dict(), "severity": 0.6})
    assert retuned.key() != spec.key()


def test_set_save_load_roundtrip(tmp_path):
    sset = _tiny_set()
    path = sset.save(tmp_path / "set.json")
    again = ScenarioSet.load(path)
    assert again.to_json() == sset.to_json()
    assert again.address == sset.address


def test_set_rejects_future_format_version(tmp_path):
    payload = _tiny_set().to_dict()
    payload["format_version"] = 999
    with pytest.raises(ValueError, match="format v999"):
        ScenarioSet.from_dict(payload)


def test_spec_validation_names_the_offender():
    with pytest.raises(ValueError, match="unknown tier"):
        ScenarioSpec(name="x", tier="z", kernels=("mahony",)).validated()
    with pytest.raises(KeyError, match="unknown arch"):
        ScenarioSpec(name="x", arch="m99", kernels=("mahony",)).validated()
    with pytest.raises(KeyError, match="unknown kernel"):
        ScenarioSpec(name="x", kernels=("nope",)).validated()
    with pytest.raises(KeyError, match="nope"):
        ScenarioSpec(name="x", kernels=("mahony",), fault="nope").validated()
    with pytest.raises(ValueError, match="severity"):
        ScenarioSpec(name="x", kernels=("mahony",), fault="brownout",
                     severity=1.5).validated()
    with pytest.raises(ValueError, match="empty"):
        ScenarioSpec(name="x").validated()


def test_set_validation_rejects_duplicate_names():
    spec = ScenarioSpec(name="dup", kernels=("mahony",))
    with pytest.raises(ValueError, match="duplicate scenario name"):
        ScenarioSet(scenarios=(spec, spec)).validated()


# ------------------------------------------------------------- profiles


def test_validate_profile_rejects_malformed():
    with pytest.raises(ValueError, match="unknown mission profile kind"):
        validate_profile({"kind": "dance"})
    with pytest.raises(ValueError, match="duration_s"):
        validate_profile({"kind": "hover"})
    with pytest.raises(ValueError, match="waypoints"):
        validate_profile({"kind": "tour", "duration_s": 0.2})
    with pytest.raises(ValueError, match="agents"):
        validate_profile({"kind": "swarm", "agents": []})
    with pytest.raises(ValueError, match="cannot nest"):
        validate_profile({
            "kind": "swarm",
            "agents": [{"kind": "swarm", "agents": [_tiny_hover()]}],
        })


def test_gust_hover_reference_is_pure_and_bumped():
    mission = mission_from_profile({
        "kind": "hover", "duration_s": 0.2,
        "gusts": [[0.05, 0.1, 0.04, 0.0, 0.0]],
    })
    assert isinstance(mission, GustHoverMission)
    before = mission.reference(0.0)
    mid = mission.reference(0.1)  # gust peak: half-way through the bump
    after = mission.reference(0.16)
    assert np.allclose(before, mission.setpoint)
    assert np.allclose(after, mission.setpoint)
    assert mid[0] == pytest.approx(mission.setpoint[0] + 0.04, abs=1e-9)
    assert np.array_equal(mission.reference(0.1), mid)


def test_flatten_agents_expands_swarms_only():
    hover = _tiny_hover()
    assert flatten_agents(hover) == [hover]
    swarm = {"kind": "swarm", "agents": [hover, hover]}
    assert flatten_agents(swarm) == [hover, hover]


# --------------------------------------------------------------- tier A


def test_tier_a_is_fixed_and_valid():
    sset = tier_a_set()
    assert tier_a_names() == (
        "robobee-hover", "robobee-waypoints", "strider-course",
        "vo-frontend",
    )
    assert [s.name for s in sset.scenarios] == list(tier_a_names())
    assert sset.address == tier_a_set().address
    assert generate_scenarios(tier="a").address == sset.address


# ------------------------------------------------------- tier B generator


def test_generation_is_byte_identical_for_a_seed():
    a = generate_scenarios(tier="b", count=12, seed=42)
    b = generate_scenarios(tier="b", count=12, seed=42)
    assert a.to_json() == b.to_json()
    assert a.address == b.address
    assert generate_scenarios(tier="b", count=12, seed=43).address != a.address


def test_generation_prefix_is_count_independent():
    long = generate_scenarios(tier="b", count=20, seed=7)
    short = generate_scenarios(tier="b", count=5, seed=7)
    assert [s.to_dict() for s in short.scenarios] == \
        [s.to_dict() for s in long.scenarios[:5]]


def test_generated_sets_validate():
    sset = generate_scenarios(tier="b", count=40, seed=3)
    assert sset.validated() is sset
    assert len(sset) == 40
    kinds = {s.mission["kind"] for s in sset.scenarios if s.mission}
    assert "hover" in kinds  # the dominant profile kind always appears


def test_generator_sample_is_order_independent():
    gen = ScenarioGenerator(seed=9)
    direct = gen.sample(17)
    via_set = generate_scenarios(tier="b", count=18, seed=9).scenarios[17]
    assert direct == via_set


def test_generation_survives_a_process_boundary():
    here = generate_scenarios(tier="b", count=10, seed=123).to_json()
    env = dict(os.environ)
    pkg_root = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c",
         "from repro.scenarios import generate_scenarios;"
         "import sys;"
         "sys.stdout.write(generate_scenarios(tier='b', count=10,"
         " seed=123).to_json())"],
        capture_output=True, text=True, env=env, check=True,
    )
    assert out.stdout == here


def test_unknown_tier_raises():
    with pytest.raises(ValueError, match="unknown tier"):
        generate_scenarios(tier="c")
    with pytest.raises(ValueError, match="count"):
        generate_scenarios(tier="b", count=0)


# ------------------------------------------------------------- campaigns


def test_mission_jobs_flatten_swarms_with_stable_seeds():
    jobs = plan_mission_jobs(_tiny_set())
    assert [(j.scenario, j.agent) for j in jobs] == [
        ("t-hover", 0), ("t-swarm", 0), ("t-swarm", 1),
    ]
    assert jobs[1].agents == 2
    again = plan_mission_jobs(_tiny_set())
    assert [j.seed for j in jobs] == [j.seed for j in again]
    # Agents of one swarm get distinct derived seeds.
    assert jobs[1].seed != jobs[2].seed


def test_campaign_report_is_byte_identical_across_jobs():
    sset = _tiny_set()
    serial = run_scenarios(sset, jobs=1)
    pooled = run_scenarios(sset, jobs=2)
    assert _canonical(serial) == _canonical(pooled)
    # And across repeat runs with the same set.
    assert _canonical(run_scenarios(sset, jobs=1)) == _canonical(serial)


def test_campaign_report_covers_grids_and_rates():
    report = run_scenarios(_tiny_set(), jobs=1)
    assert report["address"] == _tiny_set().address
    assert report["counts"] == {"kernel_cells": 2, "mission_jobs": 3}
    kernels = {(r["scenario"], r["kernel"]) for r in report["kernel_grid"]}
    assert kernels == {("t-hover", "mahony"), ("t-kernel", "fly-lqr")}
    # The brownout kernel scenario priced on a derated arch label.
    labels = {r["scenario"]: r["arch_label"] for r in report["kernel_grid"]}
    assert labels["t-hover"] == "m33+brownout:0.5"
    assert labels["t-kernel"] == "m4+dvfs:0.4"
    rates = report["failure_rates"]
    assert rates["overall"]["total"] == 3
    assert set(rates["by_fault"]) == {"brownout", "clean"}
    assert set(rates["by_kind"]) == {"hover", "steer"}


# --------------------------------------------------------------- reports


def test_pareto_front_keeps_only_nondominated():
    records = [
        {"name": "a", "e": 1.0, "l": 5.0},
        {"name": "b", "e": 2.0, "l": 3.0},
        {"name": "c", "e": 3.0, "l": 4.0},   # dominated by b
        {"name": "d", "e": 4.0, "l": 1.0},
        {"name": "skip", "e": None, "l": 0.0},
    ]
    front = pareto_front(records, "e", "l")
    assert [r["name"] for r in front] == ["a", "b", "d"]


def test_failure_rates_bucket_by_fault_and_kind():
    grid = [
        {"fault": None, "kind": "hover", "completed": True},
        {"fault": None, "kind": "hover", "completed": False},
        {"fault": "dvfs", "kind": "tour", "completed": True},
    ]
    rates = failure_rates(grid)
    assert rates["overall"]["failure_rate"] == pytest.approx(1 / 3, abs=1e-6)
    assert rates["by_fault"]["clean"]["total"] == 2
    assert rates["by_fault"]["dvfs"]["failure_rate"] == 0.0
    assert rates["by_kind"]["hover"]["completed"] == 1


def test_save_report_is_canonical(tmp_path):
    report = build_report(
        __import__("repro.scenarios.campaign", fromlist=["x"])
        .ScenarioCampaignResult(
            address="00", tier="b", seed=0, generator="g", scenarios=0,
        )
    )
    from repro.scenarios import save_report

    p1 = save_report(report, tmp_path / "a.json")
    p2 = save_report(report, tmp_path / "b.json")
    assert p1.read_bytes() == p2.read_bytes()
    assert p1.read_text().endswith("\n")
