"""Docstring-coverage gate for the public observability-adjacent API.

The actual checking moved into the ``docstring-coverage`` rule of
``repro.lint`` (one AST walk shared with ``repro lint`` and CI); this
file is the thin pytest wrapper that keeps the historical entry point —
the CI docs job runs it by name — and pins the linted scope so it
cannot shrink silently.
"""

from repro.lint import default_root, run_lint, scan_root
from repro.lint.checkers import DOC_PACKAGES


def test_lint_scope_is_nonempty():
    covered = [
        module
        for module in scan_root(default_root())
        if module.relpath.split("/")[1] in DOC_PACKAGES
    ]
    assert len(covered) >= 10, "docstring lint scope lost its modules"


def test_scope_covers_the_observability_adjacent_packages():
    assert set(DOC_PACKAGES) >= {"engine", "faults", "lint", "obs"}


def test_public_api_has_docstrings():
    result = run_lint(rules=["docstring-coverage"], use_baseline=False)
    assert not result.findings, "\n".join(
        f"{f.path}:{f.line}: {f.message}" for f in result.findings
    )
