"""Docstring-coverage lint for the public observability-adjacent API.

A lightweight, dependency-free stand-in for pydocstyle's D100-D103:
every module, public class, and public function/method in
``repro.engine``, ``repro.faults``, and ``repro.obs`` must carry a
docstring.  Runs as part of the suite (and the CI docs job) so coverage
cannot regress silently.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Packages whose public API must be fully documented.
LINTED_PACKAGES = ("engine", "faults", "obs")

MODULES = sorted(
    path
    for package in LINTED_PACKAGES
    for path in (SRC / package).rglob("*.py")
)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _missing_docstrings(path: Path):
    """Yield ``"kind name (line)"`` for each undocumented public def."""
    tree = ast.parse(path.read_text())
    if ast.get_docstring(tree) is None:
        yield "module (line 1)"

    def walk(node, prefix=""):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if _is_public(child.name):
                    if ast.get_docstring(child) is None:
                        yield f"class {prefix}{child.name} (line {child.lineno})"
                    yield from walk(child, prefix=f"{child.name}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Dunders document themselves by convention; private
                # helpers are exempt; nested closures are not public API.
                if _is_public(child.name) and ast.get_docstring(child) is None:
                    yield f"def {prefix}{child.name} (line {child.lineno})"

    yield from walk(tree)


def test_lint_scope_is_nonempty():
    assert len(MODULES) >= 10, "lint scope lost its modules"


@pytest.mark.parametrize(
    "path", MODULES, ids=lambda p: str(p.relative_to(SRC))
)
def test_public_api_has_docstrings(path):
    missing = list(_missing_docstrings(path))
    assert not missing, (
        f"{path.relative_to(SRC.parent)} lacks docstrings on: "
        + "; ".join(missing)
    )
