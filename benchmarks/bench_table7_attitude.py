"""Regenerates Table VII: latency, energy, and peak power for the attitude
filters on Cortex-M0+, M4, and M33 in f32 and q7.24 (Case Study 2).
"""

from repro.analysis import attitude_study
from repro.core.config import HarnessConfig


def test_table7_attitude(benchmark, save_artifact):
    rows = benchmark.pedantic(
        attitude_study.table7_attitude,
        kwargs={"n_samples": 120, "config": HarnessConfig(reps=1, warmup_reps=0)},
        rounds=1, iterations=1,
    )
    save_artifact("table7_attitude", attitude_study.render_table7(rows))

    by = {(r["filter"], r["format"]): r for r in rows}
    assert len(rows) == 10

    for filt in ("mahony (I)", "madgwick (I)", "mahony (M)", "madgwick (M)",
                 "fourati (M)"):
        f32 = by[(filt, "f32")]
        q = by[(filt, "q7.24")]
        # Soft-float cliff: M0+ is two orders of magnitude slower in f32.
        assert f32["latency_m0plus_us"] > 50 * f32["latency_m4_us"], filt
        # Fixed point narrows the M0+ gap (no soft-float emulation)...
        assert q["latency_m0plus_us"] < f32["latency_m0plus_us"] * 1.5, filt
        # ...but is slower than f32 on the FPU cores (shift-back tax).
        assert q["latency_m4_us"] > 1.5 * f32["latency_m4_us"], filt
        assert q["latency_m33_us"] > 1.5 * f32["latency_m33_us"], filt
        # Racing to idle: the M0+ loses on energy despite ~15 mW draw.
        assert f32["energy_m0plus_nj"] > f32["energy_m4_nj"], filt
        assert f32["energy_m0plus_nj"] > f32["energy_m33_nj"], filt
        # M33 is the energy winner in float.
        assert f32["energy_m33_nj"] < f32["energy_m4_nj"], filt

    # MARG upgrade is only a modest latency increase (paper S5).
    assert (by[("mahony (M)", "f32")]["latency_m4_us"]
            < 3 * by[("mahony (I)", "f32")]["latency_m4_us"])
    # Fourati is the most expensive filter.
    assert (by[("fourati (M)", "f32")]["latency_m4_us"]
            > by[("mahony (M)", "f32")]["latency_m4_us"])
