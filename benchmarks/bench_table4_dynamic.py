"""Regenerates Table IV: dynamic metrics — latency, energy, and peak power
with and without caches on Cortex-M4, M33, and M7 for the full suite.

This is the paper's main workload characterization (the 400+ datapoint
claim: 31 kernels x 3 cores x 2 cache states x repetitions).
"""

import pytest

from repro.analysis import tables
from repro.core.config import HarnessConfig

# Reduced sequence lengths keep the full-suite regeneration tractable in
# CI while preserving per-unit metrics (they are length-normalized).
OVERRIDES = {
    "mahony": {"n_samples": 100},
    "madgwick": {"n_samples": 100},
    "fourati": {"n_samples": 100},
    "fly-ekf (sync)": {"n_samples": 100},
    "fly-ekf (seq)": {"n_samples": 100},
    "fly-ekf (trunc)": {"n_samples": 100},
    "bee-ceekf": {"n_samples": 30},
    "fly-lqr": {"n_steps": 200},
    "fly-tiny-mpc": {"n_steps": 20},
    "bee-mpc": {"n_steps": 6},
    "bee-geom": {"n_steps": 100},
    "bee-smac": {"n_steps": 120},
}


@pytest.fixture(scope="module")
def table4_spec():
    from repro.api import SweepSpec
    from repro.mcu.arch import CHARACTERIZATION_ARCHS

    return SweepSpec(
        kernels=list(tables.TABLE_KERNELS),
        archs=list(CHARACTERIZATION_ARCHS),
        config=HarnessConfig(reps=1, warmup_reps=0),
        overrides=OVERRIDES,
    )


@pytest.fixture(scope="module")
def trace_cache():
    # Shared across this module's tests: the full-suite sweep warms it,
    # the warm-repricing benchmark then re-prices without a single solve.
    from repro.api import TraceCache

    return TraceCache()


@pytest.fixture(scope="module")
def sweep(table4_spec, trace_cache):
    from repro.api import EngineOptions, Telemetry
    from repro.api import sweep as run_sweep

    telemetry = Telemetry()
    results = run_sweep(
        table4_spec,
        options=EngineOptions(jobs=2, trace_cache=trace_cache),
        telemetry=telemetry,
    )
    summary = telemetry.summary()
    results.engine_summary = summary  # stashed for the telemetry artifact
    return results


def test_table4_dynamic(benchmark, save_artifact, sweep):
    # Time a single-kernel slice (the full sweep ran once in the fixture).
    benchmark.pedantic(
        tables.table4_dynamic,
        kwargs={"kernels": ("mahony",), "config": HarnessConfig(reps=1, warmup_reps=0)},
        rounds=1, iterations=1,
    )
    text = tables.render_table4(sweep, kernels=tables.TABLE_KERNELS)
    save_artifact("table4_dynamic", text)

    assert len(sweep) == 31 * 3 * 2

    # Shape assertions against the paper's headline relationships.
    def lat(k, a, c="C"):
        return sweep.get(k, a, c).unit_latency_us

    def energy(k, a, c="C"):
        return sweep.get(k, a, c).unit_energy_uj

    # M33 is the energy winner for every kernel that fits it.
    for kernel in tables.TABLE_KERNELS:
        r = sweep.get(kernel, "m33", "C")
        if not r.fits:
            continue
        assert energy(kernel, "m33") < energy(kernel, "m4"), kernel
        assert energy(kernel, "m33") < energy(kernel, "m7"), kernel

    # M7 cache sensitivity: uncached runs cost 1.5-4x more time.
    for kernel in ("fastbrief", "lkof", "5pt", "bee-mpc"):
        ratio = lat(kernel, "m7", "NC") / lat(kernel, "m7", "C")
        assert 1.3 < ratio < 5.0, (kernel, ratio)

    # M4 cache (flash accelerator) barely matters.
    for kernel in ("fastbrief", "p3p"):
        ratio = lat(kernel, "m4", "NC") / lat(kernel, "m4", "C")
        assert ratio < 1.35, (kernel, ratio)

    # Spectrum: attitude filters in microseconds, sift in seconds territory.
    assert lat("mahony", "m4") < 20
    assert lat("sift", "m7") > 50_000


def test_table4_engine_warm_repricing(benchmark, artifact_dir, table4_spec,
                                      trace_cache, sweep):
    """Warm-cache regeneration: the whole table re-prices with zero solves.

    Saves the engine telemetry summary as a JSON artifact so BENCH_*
    trajectories can track cache hit rate and repricing wall time per PR.
    """
    import json

    from repro.api import EngineOptions, Telemetry
    from repro.api import sweep as run_sweep
    from repro.core.experiment_io import save_telemetry_json

    def warm_run():
        telemetry = Telemetry()
        results = run_sweep(
            table4_spec,
            options=EngineOptions(trace_cache=trace_cache),
            telemetry=telemetry,
        )
        return results, telemetry.summary()

    results, summary = benchmark.pedantic(warm_run, rounds=3, iterations=1)
    assert len(results) == 31 * 3 * 2
    assert summary["solves_executed"] == 0
    assert summary["cache_hit_rate"] == 1.0

    payload = {"cold_sweep": sweep.engine_summary, "warm_repricing": summary}
    path = save_telemetry_json(payload, artifact_dir / "table4_engine_telemetry.json")
    assert json.loads(path.read_text())["warm_repricing"]["cache_hits"] > 0
