"""Shared helpers for the benchmark suite.

Each ``bench_*`` module regenerates one of the paper's tables or figures:
the benchmark fixture times the regeneration, and the rendered artifact is
written to ``benchmarks/output/`` so results can be inspected and diffed
against the paper (see EXPERIMENTS.md).
"""

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def save_artifact(artifact_dir):
    """Save a rendered table/figure to benchmarks/output/<name>.txt."""

    def _save(name: str, text: str) -> Path:
        path = artifact_dir / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _save
