"""Scenario-subsystem bench: generation throughput and campaign scaling.

Seeds the repo's first perf baseline, ``BENCH_scenarios.json`` at the
repo root: Tier-B generation throughput (scenarios/s), campaign
wall-time at ``--jobs 1`` vs ``--jobs 4``, and the kernel-grid cache hit
counts.  Re-running the bench overwrites the baseline, so perf drift in
the generator or the campaign executor shows up as a diff.
"""

import json
import time
from pathlib import Path

from repro.api import generate_scenarios, run_scenarios

BASELINE = Path(__file__).parent.parent / "BENCH_scenarios.json"

GEN_COUNT = 300
CAMPAIGN_COUNT = 12
SEED = 42


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_scenarios_bench(benchmark, save_artifact):
    """Generation throughput + campaign wall-time, one JSON baseline."""
    _, gen_s = _timed(
        lambda: generate_scenarios(tier="b", count=GEN_COUNT, seed=SEED)
    )
    sset = generate_scenarios(tier="b", count=CAMPAIGN_COUNT, seed=SEED)

    serial = benchmark.pedantic(
        lambda: _timed(lambda: run_scenarios(sset, jobs=1)),
        rounds=1, iterations=1,
    )
    serial_report, serial_s = serial
    pooled_report, pooled_s = _timed(lambda: run_scenarios(sset, jobs=4))

    # The scaling knob must not change the answer.
    assert json.dumps(serial_report, sort_keys=True) == \
        json.dumps(pooled_report, sort_keys=True)

    cache = serial_report["cache_stats"]
    baseline = {
        "generation": {
            "count": GEN_COUNT,
            "seed": SEED,
            "wall_s": round(gen_s, 4),
            "scenarios_per_s": round(GEN_COUNT / gen_s, 1),
        },
        "campaign": {
            "count": CAMPAIGN_COUNT,
            "seed": SEED,
            "address": serial_report["address"],
            "kernel_cells": serial_report["counts"]["kernel_cells"],
            "mission_jobs": serial_report["counts"]["mission_jobs"],
            "wall_s_jobs1": round(serial_s, 3),
            "wall_s_jobs4": round(pooled_s, 3),
        },
        "cache": {
            "memory_hits": cache["memory_hits"],
            "disk_hits": cache["disk_hits"],
            "misses": cache["misses"],
        },
    }
    BASELINE.write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n"
    )
    save_artifact("scenarios_bench", json.dumps(baseline, indent=2,
                                                sort_keys=True))

    assert baseline["generation"]["scenarios_per_s"] > 50
    assert baseline["campaign"]["kernel_cells"] > 0
    assert baseline["campaign"]["mission_jobs"] > 0
