"""Regenerates Table VI: energy and peak power for perception kernels on
Cortex-M4, M33, and M7 across the midd / lights / april datasets, plus the
bbof-vec DSP-extension variant (Case Study 1).
"""

from repro.analysis import tables
from repro.core.config import HarnessConfig


def test_table6_perception(benchmark, save_artifact):
    rows = benchmark.pedantic(
        tables.table6_perception,
        kwargs={"config": HarnessConfig(reps=1, warmup_reps=0)},
        rounds=1, iterations=1,
    )
    save_artifact("table6_perception", tables.render_table6(rows))

    by = {(r["kernel"], r["data"]): r for r in rows}

    # orb costs 1.2-3x fastbrief on every dataset and core (paper: 1.5-2.5x).
    for data in ("midd", "lights", "april"):
        for arch in ("m4", "m33", "m7"):
            ratio = (by[("orb", data)][f"energy_{arch}_uj"]
                     / by[("fastbrief", data)][f"energy_{arch}_uj"])
            assert 1.1 < ratio < 3.5, (data, arch, ratio)

    # Dataset ordering: lights cheapest, april most expensive.
    for kernel in ("fastbrief", "orb"):
        e = {d: by[(kernel, d)]["energy_m4_uj"] for d in ("midd", "lights", "april")}
        assert e["lights"] < e["midd"] <= e["april"] * 1.15, (kernel, e)

    # lkof is an order of magnitude above bbof; bbof-vec ~4x below bbof.
    assert by[("lkof", "midd")]["energy_m4_uj"] > 5 * by[("bbof", "midd")]["energy_m4_uj"]
    vec_ratio = (by[("bbof", "midd")]["energy_m4_uj"]
                 / by[("bbof-vec", "midd")]["energy_m4_uj"])
    assert 2.5 < vec_ratio < 6.5

    # M33 peak power far below M4/M7 on every row.
    for row in rows:
        assert row["pmax_m33_mw"] < 0.5 * row["pmax_m4_mw"]
