"""Regenerates Table VIII: cycles and energy per update vs static FLOP
estimates for the sensor-fusion and control kernels (Case Study 3).
"""

from repro.analysis import flops


def test_table8_flops(benchmark, save_artifact):
    rows = benchmark.pedantic(flops.table8_flops, rounds=1, iterations=1)
    save_artifact("table8_flops", flops.render_table8(rows))

    by = {r["kernel"]: r for r in rows}
    assert len(rows) == 5

    # Measured energy exceeds the FLOP-and-datasheet estimate everywhere.
    for row in rows:
        for arch in ("m4", "m33", "m7"):
            assert row[f"meas_energy_{arch}_uj"] > 1.5 * row[f"est_energy_{arch}_uj"], row["kernel"]

    # The gap varies wildly: bee-ceekf's generic-framework deployment is
    # catastrophically mispredicted (paper: ~900x; we require >> lqr's gap).
    assert by["bee-ceekf"]["gap_m4"] > 10 * by["fly-lqr"]["gap_m4"]

    # TinyMPC shows a 5-50x gap (paper: 17-33x).
    assert 3 < by["fly-tiny-mpc"]["gap_m4"] < 200

    # The truncated fly-ekf's FLOP count is lower than sequential's, and
    # both remain mispredicted.
    assert by["fly-ekf (trunc)"]["flops"] < by["fly-ekf (seq)"]["flops"]

    # Cycle counts dwarf FLOP counts (the "79-81% underestimation" claim
    # corresponds to cycles >> FLOPs).
    for row in rows:
        assert row["cycles_m4"] > 2 * row["flops"], row["kernel"]
