"""Service-tier bench: shard invariance, latency ladder, tiers, overload.

Seeds ``BENCH_service.json`` at the repo root with four figures for the
sharded, admission-controlled query service (see ``docs/service.md``):

* **identity** — the headline invariant: a 64-query characterize burst
  answered through a :class:`repro.api.ShardPool` must be byte-identical
  to the serial single-broker reference at 1, 2, and 4 shards, with the
  L2 disk spill enabled and disabled.  Any diff is a hard failure.
* **latency** — p50/p99 request latency and aggregate QPS measured over
  TCP with 1, 8, and 64 concurrent clients (``--quick``: 1 and 8)
  against a warm 4-shard pool, so the figure isolates service overhead
  (framing, event loop, shard routing, L1 hits) rather than solve time.
* **tiers** — a capacity-2 L1 in front of a disk spill, swept with 8
  distinct cells twice: round two must be served from L2 (nonzero L2
  hit and promotion counts prove the eviction→spill→promote path).
* **overload** — a one-slot shard pinned mid-batch while probes arrive
  over the wire: every probe must shed with a well-formed structured
  ``service-overloaded`` record (positive ``retry_after``), and the
  shard must serve again once the slot frees.

Byte-identity and shed well-formedness are asserted on every run, so
the bench doubles as an end-to-end smoke test.  CI runs
``python benchmarks/bench_service.py --quick``; a full run regenerates
the committed baseline including the 64-client rung.
"""

import argparse
import json
import tempfile
import threading
import time
from pathlib import Path

from repro.api import (
    CharacterizeQuery,
    ServiceBroker,
    ServiceClient,
    ServiceServer,
    ShardPool,
    query,
)
from repro.core.config import HarnessConfig

BASELINE = Path(__file__).parent.parent / "BENCH_service.json"

#: One rep, no warmup, shrunk sequences: answers stay exact and solves
#: stay small, so the bench measures the service tier, not the engine.
CONFIG = HarnessConfig(reps=1, warmup_reps=0)
OVERRIDES = {"*": {"n_samples": 40}}

KERNELS = ("mahony", "madgwick")
ARCH_NAMES = ("m4", "m33")
CACHE_LABELS = ("C", "NC")

BURST_REPEATS = 8  # 8 distinct cells x 8 = the documented 64-query burst


def _cells():
    """The 8 distinct characterize cells every phase sweeps."""
    return [
        CharacterizeQuery(kernel=k, arch=a, cache=c)
        for k in KERNELS for a in ARCH_NAMES for c in CACHE_LABELS
    ]


def _wire(cell) -> dict:
    """The raw wire request for one characterize cell."""
    return {
        "op": "characterize",
        "kernel": cell.kernel,
        "arch": cell.arch,
        "cache": cell.cache,
    }


def _rendered(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def _percentile(values, q: float) -> float:
    """Nearest-rank percentile of an unsorted sample."""
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


# ----------------------------------------------------------- the phases


def _identity(spill_root: Path) -> dict:
    """64-query burst vs the serial broker at every topology."""
    cells = _cells()
    burst = cells * BURST_REPEATS

    with ServiceBroker(config=CONFIG, overrides=OVERRIDES) as serial:
        reference = [
            _rendered(query(cell, broker=serial)) for cell in cells
        ]

    diffs = 0
    topologies = []
    for n_shards in (1, 2, 4):
        for spill in (False, True):
            spill_dir = (
                spill_root / f"spill-{n_shards}" if spill else None
            )
            # capacity < distinct cells so the spill topologies really
            # evict and re-load answers through L2 mid-burst.
            with ShardPool(
                config=CONFIG,
                overrides=OVERRIDES,
                n_shards=n_shards,
                capacity=4,
                spill_dir=spill_dir,
            ) as pool:
                answers = pool.ask_many(burst, timeout=600)
            diffs += sum(
                1
                for i, payload in enumerate(answers)
                if _rendered(payload) != reference[i % len(cells)]
            )
            topologies.append({"n_shards": n_shards, "spill": spill})

    return {
        "burst_queries": len(burst),
        "distinct_cells": len(cells),
        "topologies": topologies,
        "byte_diffs": diffs,
        "byte_identical": diffs == 0,
    }


def _client_rounds(address, requests, latencies, barrier):
    """One client thread: connect, sync on the barrier, time each ask."""
    with ServiceClient(*address) as client:
        barrier.wait(60)
        for request in requests:
            start = time.perf_counter()
            client.ask(dict(request))
            latencies.append(time.perf_counter() - start)


def _latency(quick: bool) -> dict:
    """p50/p99 and QPS at each rung of the concurrent-client ladder."""
    ladder = (1, 8) if quick else (1, 8, 64)
    per_client = 25 if quick else 40
    cells = _cells()

    pool = ShardPool(
        config=CONFIG, overrides=OVERRIDES, n_shards=4, max_inflight=256
    )
    rungs = []
    try:
        with ServiceServer(pool) as server:
            # Warm every cell once so the timed requests are L1 hits:
            # the ladder measures service overhead, not solve time.
            with ServiceClient(*server.address) as warmer:
                for cell in cells:
                    warmer.ask(_wire(cell))

            for n_clients in ladder:
                requests = [
                    _wire(cells[i % len(cells)]) for i in range(per_client)
                ]
                barrier = threading.Barrier(n_clients + 1)
                buckets = [[] for _ in range(n_clients)]
                threads = [
                    threading.Thread(
                        target=_client_rounds,
                        args=(server.address, requests, bucket, barrier),
                    )
                    for bucket in buckets
                ]
                for thread in threads:
                    thread.start()
                barrier.wait(60)
                wall_start = time.perf_counter()
                for thread in threads:
                    thread.join()
                wall = time.perf_counter() - wall_start

                merged = [dt for bucket in buckets for dt in bucket]
                rungs.append({
                    "clients": n_clients,
                    "requests": len(merged),
                    "p50_ms": round(_percentile(merged, 0.50) * 1e3, 3),
                    "p99_ms": round(_percentile(merged, 0.99) * 1e3, 3),
                    "qps": round(len(merged) / wall, 1),
                    "wall_s": round(wall, 4),
                })
    finally:
        pool.close()
    return {"per_client_requests": per_client, "rungs": rungs}


def _tiers(spill_root: Path) -> dict:
    """Two sequential sweeps through a capacity-2 L1 over a disk spill."""
    with ShardPool(
        config=CONFIG,
        overrides=OVERRIDES,
        n_shards=1,
        capacity=2,
        spill_dir=spill_root / "tiers",
    ) as pool:
        cells = _cells()
        for cell in cells:          # fill: 8 cells through 2 slots
            pool.ask(cell, timeout=600)
        for cell in cells:          # re-read: served from the spill
            pool.ask(cell, timeout=600)
        cache = pool.stats()["cache"]

    return {
        "l1_capacity": cache["capacity"],
        "l1_hits": cache["hits"],
        "l1_evictions": cache["evictions"],
        "l2_entries": cache["l2"]["entries"],
        "l2_hits": cache["l2"]["hits"],
        "l2_promotions": cache["l2"]["promotions"],
    }


def _hold_dispatch(pool):
    """Pin the lone shard's dispatcher behind an event; returns the gate.

    The bench-only overload seam: CI needs deterministic saturation, and
    sizing a solve against wall clock is not deterministic.  Holding the
    batch dispatcher keeps the admitted query in flight for exactly as
    long as the probes need.
    """
    broker = pool._shards[0]
    gate = threading.Event()
    original = broker._run_batch

    def held(batch):
        gate.wait(60)
        original(batch)

    broker._run_batch = held
    return gate


def _overload() -> dict:
    """Probe a saturated one-slot shard over TCP; audit the shed records."""
    pool = ShardPool(
        config=CONFIG, overrides=OVERRIDES, n_shards=1, max_inflight=1
    )
    gate = _hold_dispatch(pool)
    cells = _cells()
    try:
        with ServiceServer(pool) as server, \
                ServiceClient(*server.address) as client:
            occupier = pool.submit(cells[0])
            responses = [
                client.query({"v": 2, **_wire(cell)}) for cell in cells[1:]
            ]
            gate.set()
            pool.result(occupier, timeout=600)
            # The slot was released on delivery: the shard serves again.
            recovered = client.ask(_wire(cells[1]))["kind"] == "characterize"

        shed = [r for r in responses if not r.get("ok")]
        well_formed = bool(shed) and all(
            r.get("v") == 2
            and isinstance(r.get("error"), dict)
            and r["error"].get("code") == "service-overloaded"
            and isinstance(r["error"].get("retry_after"), float)
            and r["error"]["retry_after"] > 0
            and isinstance(r["error"].get("message"), str)
            for r in shed
        )
        return {
            "max_inflight": 1,
            "probes": len(responses),
            "shed": len(shed),
            "shed_rate": round(len(shed) / len(responses), 3),
            "retry_after_s": shed[0]["error"]["retry_after"] if shed else None,
            "records_well_formed": well_formed,
            "recovered_after_release": recovered,
        }
    finally:
        gate.set()
        pool.close()


def run_bench(quick: bool = False, write: bool = True) -> dict:
    """Run all four phases; optionally reseed ``BENCH_service.json``."""
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        spill_root = Path(tmp)
        baseline = {
            "mode": "quick" if quick else "full",
            "identity": _identity(spill_root),
            "latency": _latency(quick),
            "tiers": _tiers(spill_root),
            "overload": _overload(),
        }
    if write:
        BASELINE.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
    return baseline


def _check(baseline: dict) -> None:
    """The pass/fail gates shared by CI smoke and the pytest wrapper."""
    if not baseline["identity"]["byte_identical"]:
        raise AssertionError(
            f"{baseline['identity']['byte_diffs']} byte-diffs vs the "
            "serial broker reference"
        )
    if baseline["tiers"]["l2_hits"] < 1:
        raise AssertionError("the eviction run never hit the L2 spill")
    overload = baseline["overload"]
    if overload["shed"] < 1 or not overload["records_well_formed"]:
        raise AssertionError(f"malformed or missing shed records: {overload}")
    if not overload["recovered_after_release"]:
        raise AssertionError("shard did not recover after slot release")


def test_service_bench(benchmark, save_artifact):
    """Quick-ladder run of every phase with the CI gates applied.

    Does not touch the committed ``BENCH_service.json`` — only a full
    script run (``python benchmarks/bench_service.py``) reseeds it.
    """
    baseline = benchmark.pedantic(
        lambda: run_bench(quick=True, write=False), rounds=1, iterations=1
    )
    save_artifact(
        "service_bench", json.dumps(baseline, indent=2, sort_keys=True)
    )
    _check(baseline)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="1/8-client ladder and fewer requests (the CI smoke mode)",
    )
    args = parser.parse_args()
    result = run_bench(quick=args.quick)
    print(json.dumps(result, indent=2, sort_keys=True))
    print(f"wrote {BASELINE}")
    try:
        _check(result)
    except AssertionError as exc:
        raise SystemExit(str(exc))
