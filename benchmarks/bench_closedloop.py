"""Closed-loop extension bench: the Section VI.E roadmap questions.

* "How coarse can the [control] be before energy savings hurt success?"
  — sweep the flapping-wing control rate and watch completion flip.
* Does core choice propagate to task level? — run the same mission on
  M0+/M4/M33 and compare outcomes and compute energy.
"""

import pytest

from repro.api import FlappingWingRunner, HoverMission, SteeringCourse, StriderRunner
from repro.mcu.arch import M0PLUS, M4, M33


def _render(rows, columns) -> str:
    head = " ".join(f"{c:>18s}" for c in columns)
    lines = [head, "-" * len(head)]
    for row in rows:
        lines.append(" ".join(f"{row[c]!s:>18s}" for c in columns))
    return "\n".join(lines)


def test_closedloop_rate_sweep(benchmark, save_artifact):
    """Lower control rates save compute energy until the task collapses."""

    def sweep():
        rows = []
        for rate in (100.0, 250.0, 1000.0, 2000.0):
            runner = FlappingWingRunner(arch=M33, control_rate_hz=rate)
            result = runner.run(HoverMission())
            rows.append({
                "rate_hz": int(rate),
                "completed": result.completed,
                "rms_m": round(result.path_error_rms_m, 4),
                "compute_mj": round(result.compute_energy_mj, 3),
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_artifact("closedloop_rate_sweep",
                  _render(rows, ["rate_hz", "completed", "rms_m", "compute_mj"]))

    by_rate = {r["rate_hz"]: r for r in rows}
    # Energy scales with rate...
    assert by_rate[2000]["compute_mj"] > 3 * by_rate[250]["compute_mj"]
    # ...but below some rate the fast attitude dynamics are lost (the
    # steady-state tilt no longer settles and the mission fails).
    assert by_rate[2000]["completed"]
    assert by_rate[250]["completed"]
    assert not by_rate[100]["completed"]


def test_closedloop_core_comparison(benchmark, save_artifact):
    """Core choice propagates to mission outcome and energy."""
    def run_all():
        out = []
        for arch in (M33, M4, M0PLUS):
            out.append((arch, FlappingWingRunner(arch=arch).run(HoverMission())))
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for arch, result in results:
        rows.append({
            "core": arch.name,
            "completed": result.completed,
            "deadline": round(result.deadline_hit_rate, 2),
            "rate_hz": int(result.effective_rate_hz),
            "compute_mj": round(result.compute_energy_mj, 3),
        })
    save_artifact("closedloop_cores",
                  _render(rows, ["core", "completed", "deadline", "rate_hz",
                                 "compute_mj"]))

    by = {r["core"]: r for r in rows}
    assert by["m33"]["completed"] and by["m4"]["completed"]
    assert not by["m0plus"]["completed"]
    assert by["m0plus"]["deadline"] < 0.5
    assert by["m33"]["compute_mj"] < 0.5 * by["m4"]["compute_mj"]


def test_closedloop_strider_feasible_on_m0plus(benchmark, save_artifact):
    """The gentler 200 Hz strider loop fits even the M0+ — why sub-gram
    surface robots ship with small processors."""
    def run_m33():
        return StriderRunner(arch=M33).run(SteeringCourse())

    first = benchmark.pedantic(run_m33, rounds=1, iterations=1)
    rows = []
    for arch, result in ((M33, first),
                         (M0PLUS, StriderRunner(arch=M0PLUS).run(SteeringCourse()))):
        rows.append({
            "core": arch.name,
            "completed": result.completed,
            "rms_rad": round(result.path_error_rms_m, 4),
            "compute_mj": round(result.compute_energy_mj, 3),
        })
    save_artifact("closedloop_strider",
                  _render(rows, ["core", "completed", "rms_rad", "compute_mj"]))
    assert all(r["completed"] for r in rows)
