"""Cross-ISA pricing benches for the backend registry.

Not a paper table — this quantifies what the multi-ISA registry buys:
the same op trace priced on every characterization core of every
backend, and the quantized-vs-float cost of the TinyML kernel per ISA
family (the deployment story: int8 is a large win on soft-float cores
and roughly a wash on an FPU core).

The deterministic pricing rows are committed as
``benchmarks/BENCH_backends.json`` and the bench asserts the regenerated
numbers still match — a pricing drift on any backend fails here before
it reaches a paper table.  Wall-clock throughput (priced cells per
second) is measured by the benchmark fixture and written only to
``benchmarks/output/``, never compared.
"""

import json
from pathlib import Path

from repro.backends import characterization_archs, get_arch, list_backends
from repro.core import registry
from repro.core.config import HarnessConfig
from repro.core.harness import Harness
from repro.mcu.cache import CACHE_ON

SEED_PATH = Path(__file__).parent / "BENCH_backends.json"
CONFIG = HarnessConfig(reps=1, warmup_reps=0)

#: Float reference kernel priced on every characterization core.
REFERENCE_KERNEL = "mahony"
#: (float kernel, quantized kernel) pairs priced per-core for the ratio.
QUANT_PAIR = ("proximity-net", "proximity-net-int8")
#: Cores for the quantized comparison: one soft-float and one FPU core
#: per backend.
QUANT_CORES = ("m0plus", "m4", "rv32imc", "rv32imafc")


def _run(kernel: str, arch_name: str):
    problem = registry.create(kernel)
    return Harness(get_arch(arch_name), CONFIG).run(problem, CACHE_ON)


def _pricing() -> dict:
    """The deterministic cross-ISA pricing summary (the committed half)."""
    per_core = {}
    for arch in characterization_archs():
        result = _run(REFERENCE_KERNEL, arch.name)
        per_core[arch.name] = {
            "isa": arch.isa,
            "unit_cycles": round(result.unit_cycles, 3),
            "unit_latency_us": round(result.unit_latency_us, 3),
            "unit_energy_uj": round(result.unit_energy_uj, 3),
        }
    quantized = {}
    for core in QUANT_CORES:
        flt = _run(QUANT_PAIR[0], core)
        q8 = _run(QUANT_PAIR[1], core)
        if not (flt.fits and q8.fits):
            # The CNN's activation buffers overflow the core's SRAM
            # entirely (the M0+'s 20 KB); record the fact, not a NaN.
            quantized[core] = {"fits": False}
            continue
        quantized[core] = {
            "float_unit_latency_us": round(flt.unit_latency_us, 3),
            "int8_unit_latency_us": round(q8.unit_latency_us, 3),
            "int8_speedup": round(flt.unit_latency_us / q8.unit_latency_us, 3),
        }
    return {
        "backends": list_backends(),
        "reference_kernel": REFERENCE_KERNEL,
        "per_core": per_core,
        "quantized": {"pair": list(QUANT_PAIR), "per_core": quantized},
    }


def _canonical(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def test_bench_backends_pricing(benchmark, save_artifact):
    """Regenerate the cross-ISA pricing seed and diff it against the
    committed ``BENCH_backends.json``; time one full registry pricing
    pass for the throughput figure."""
    pricing = benchmark(_pricing)

    cells = len(pricing["per_core"]) + 2 * len(QUANT_CORES)
    seconds = benchmark.stats.stats.mean
    save_artifact(
        "bench_backends",
        _canonical(pricing)
        + f"throughput: {cells / seconds:.1f} priced cells/s "
        f"({cells} cells in {seconds:.3f}s mean)",
    )

    committed = json.loads(SEED_PATH.read_text())
    assert pricing == committed, (
        "cross-ISA pricing drifted from benchmarks/BENCH_backends.json; "
        "if the change is intentional, regenerate the seed with "
        "`python benchmarks/bench_backends.py`"
    )

    # The deployment story in one assert pair: int8 is a big win on the
    # soft-float core, and no such win on the FPU cores (the M0+ cannot
    # hold the CNN's activations at all).
    q = pricing["quantized"]["per_core"]
    assert q["m0plus"] == {"fits": False}
    assert q["rv32imc"]["int8_speedup"] > 2.0
    assert q["m4"]["int8_speedup"] < 1.5
    assert q["rv32imafc"]["int8_speedup"] < 1.5


if __name__ == "__main__":
    SEED_PATH.write_text(_canonical(_pricing()))
    print(f"wrote {SEED_PATH}")
