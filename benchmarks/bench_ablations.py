"""Ablation benches for the design choices the paper calls out.

Not a paper table — these quantify the knobs the text discusses:
TinyMPC's start-up pass and warm starting, LO-RANSAC's local-optimization
step, and the fly-ekf truncation degree.
"""

import numpy as np
import pytest

from repro.control.dynamics import fly_longitudinal
from repro.control.tinympc import TinyMpc
from repro.datasets.pose import make_relative_problem, rotation_angle_deg
from repro.mcu.ops import OpCounter
from repro.pose.ransac import RansacConfig, RelativePoseAdapter, lo_ransac


def _render(rows, columns) -> str:
    head = " ".join(f"{c:>16s}" for c in columns)
    lines = [head, "-" * len(head)]
    for row in rows:
        lines.append(" ".join(f"{row[c]!s:>16s}" for c in columns))
    return "\n".join(lines)


def test_ablation_tinympc_startup_and_warmstart(benchmark, save_artifact):
    """The paper: TinyMPC's start-up 'could be moved completely offline'."""
    model = fly_longitudinal()

    def startup_cost():
        mpc = TinyMpc(model, horizon=10)
        c = OpCounter()
        mpc.setup_cache(c)
        return c.trace.total

    startup_ops = benchmark(startup_cost)

    # Per-solve cost with and without warm starting.
    x0 = np.array([0.02, 0.01, -0.01, 0.0])
    rows = []
    for warm in (True, False):
        mpc = TinyMpc(model, horizon=10)
        mpc.setup_cache(OpCounter())
        x = x0.copy()
        c = OpCounter()
        for _ in range(30):
            if not warm:
                mpc._z = mpc._y = None  # discard the carried duals
            result = mpc.solve(c, x, np.zeros((11, 4)), max_iters=12)
            x = model.step(x, result.u0)
        rows.append({"warm_start": warm, "ops_per_solve": c.trace.total // 30})
    save_artifact(
        "ablation_tinympc",
        f"startup ops: {startup_ops}\n"
        + _render(rows, ["warm_start", "ops_per_solve"]),
    )

    # Start-up dwarfs a single solve (why it matters for stack/flash).
    assert startup_ops > 5 * rows[0]["ops_per_solve"]
    # Warm starting cuts the per-solve cost.
    assert rows[0]["ops_per_solve"] < rows[1]["ops_per_solve"]


def test_ablation_lo_ransac_local_optimization(benchmark, save_artifact):
    """LO-RANSAC's 'optional linear or nonlinear local refinement'."""
    def run_variants():
        out = []
        for lo in (True, False):
            out.append(lo)
        return out

    benchmark.pedantic(run_variants, rounds=1, iterations=1)
    rows = []
    for lo in (True, False):
        errors, scores, ops = [], [], 0
        for seed in range(8):
            prob = make_relative_problem(
                n_points=24, noise_px=0.5, outlier_ratio=0.25, seed=seed
            )
            c = OpCounter()
            result = lo_ransac(
                c, RelativePoseAdapter(prob.x1, prob.x2, minimal="5pt"),
                RansacConfig(threshold_px=2.0, seed=1, local_optimization=lo,
                             final_refinement=lo),
            )
            ops += c.trace.total
            scores.append(result.score)
            if result.model is not None:
                errors.append(rotation_angle_deg(result.model[0], prob.r_true))
        rows.append({
            "local_opt": lo,
            "median_err_deg": round(float(np.median(errors)), 3),
            "mean_score": round(float(np.mean(scores)), 1),
            "mean_ops": ops // 8,
        })
    save_artifact("ablation_lo_ransac",
                  _render(rows, ["local_opt", "median_err_deg", "mean_score",
                                 "mean_ops"]))

    with_lo, without = rows
    # LO costs more but finds at-least-as-good consensus and lower error.
    assert with_lo["mean_ops"] > without["mean_ops"] * 0.8
    assert with_lo["mean_score"] >= without["mean_score"]
    assert with_lo["median_err_deg"] <= without["median_err_deg"] * 1.5


def test_ablation_ekf_truncation_degree(benchmark, save_artifact):
    """fly-ekf truncated updates: cost vs accuracy across truncation."""
    from repro.datasets import fusion
    from repro.ekf.base import ExtendedKalmanFilter
    from repro.ekf.fly_ekf import FlyEkf

    seq = benchmark.pedantic(fusion.fly_synth, kwargs={"n": 150, "seed": 0},
                             rounds=1, iterations=1)
    rows = []
    for truncate_to in (1, 2, 3, 4):
        filt = FlyEkf(strategy="trunc")

        # Patch the truncation degree via a wrapper around the update.
        original = filt.ekf.update_sequential

        def patched(z, h_fn, h_jac, r_diag, counter, truncate_to=truncate_to,
                    _orig=original):
            return _orig(z, h_fn, h_jac, r_diag, counter,
                         truncate_to=truncate_to)

        filt.ekf.update_sequential = patched
        filt.strategy = "trunc"
        c = OpCounter()
        errors = []
        for s in seq.samples:
            x = filt.step(seq.dt, c, s.imu, s.tof, s.flow)
            errors.append(abs(x[0] - s.true_state[0]))
        rows.append({
            "truncate_to": truncate_to,
            "ops_per_update": c.trace.total // len(seq),
            "z_rmse_mm": round(float(np.sqrt(np.mean(np.array(errors[75:]) ** 2))) * 1e3, 2),
        })
    save_artifact("ablation_ekf_truncation",
                  _render(rows, ["truncate_to", "ops_per_update", "z_rmse_mm"]))

    # Cost rises with truncation degree; accuracy is acceptable everywhere
    # for this workload (constant Jacobians — the RoboFly design point).
    ops = [r["ops_per_update"] for r in rows]
    assert ops == sorted(ops)
    assert all(r["z_rmse_mm"] < 20.0 for r in rows)


def test_ablation_axle_chain_vs_dense(benchmark, save_artifact):
    """The expansion kernel's headline: chain-structured factor graphs
    smooth in O(N) where a dense solve pays O(N^3) (AXLE [50])."""
    from repro.factorgraph.axle import (
        _assemble,
        _solve_block_tridiagonal,
        solve_dense_for_reference,
    )
    from repro.factorgraph.suite import make_smoothing_problem

    rows = []
    for n_poses in (20, 40, 80):
        graph, initial, truth = make_smoothing_problem(n_poses=n_poses, seed=0)
        c_thomas, c_dense = OpCounter(), OpCounter()
        diag, off, rhs = _assemble(c_thomas, graph, initial)
        _solve_block_tridiagonal(c_thomas, diag, off, rhs)
        solve_dense_for_reference(c_dense, graph, initial)
        rows.append({
            "n_poses": n_poses,
            "thomas_ops": c_thomas.trace.total,
            "dense_ops": c_dense.trace.total,
            "speedup": round(c_dense.trace.total / c_thomas.trace.total, 1),
        })

    def smooth_once():
        from repro.factorgraph.axle import smooth

        graph, initial, _ = make_smoothing_problem(n_poses=40, seed=0)
        return smooth(OpCounter(), graph, initial)

    benchmark.pedantic(smooth_once, rounds=1, iterations=1)
    save_artifact("ablation_axle",
                  _render(rows, ["n_poses", "thomas_ops", "dense_ops", "speedup"]))

    # The dense/chain gap grows with trajectory length.
    speedups = [r["speedup"] for r in rows]
    assert speedups == sorted(speedups)
    assert speedups[-1] > 50
