"""Regenerates Figure 3: cycle counts for feature detection across the
three datasets (a) and the four optical-flow kernels (b) — Case Study 1.
"""

from repro.analysis import perception_study
from repro.core.config import HarnessConfig

FAST = HarnessConfig(reps=1, warmup_reps=0)


def _render(rows_a, rows_b) -> str:
    lines = ["Fig 3(a): feature-detection cycles by dataset"]
    for r in rows_a:
        lines.append(
            f"  {r['kernel']:10s} {r['dataset']:7s} "
            f"m4={r['cycles_m4']:12,.0f} m33={r['cycles_m33']:12,.0f} "
            f"m7={r['cycles_m7']:12,.0f} features={r.get('n_features', '-')}"
        )
    lines.append("Fig 3(b): optical-flow cycles")
    for r in rows_b:
        lines.append(
            f"  {r['kernel']:10s} m4={r['cycles_m4']:12,.0f} "
            f"m33={r['cycles_m33']:12,.0f} m7={r['cycles_m7']:12,.0f}"
        )
    return "\n".join(lines)


def test_fig3_cycles(benchmark, save_artifact):
    rows_a = perception_study.fig3a_detection_cycles(config=FAST)
    rows_b = benchmark.pedantic(
        perception_study.fig3b_flow_cycles, kwargs={"config": FAST},
        rounds=1, iterations=1,
    )
    save_artifact("fig3_cycles", _render(rows_a, rows_b))

    # (a) dataset ordering: lights cheapest for both detectors.
    for detector in ("fastbrief", "orb"):
        order = perception_study.dataset_cost_ordering(rows_a, detector)
        assert order[0] == "lights", (detector, order)

    # (a) orb above fastbrief on every dataset.
    by_a = {(r["kernel"], r["dataset"]): r for r in rows_a}
    for dataset in ("midd", "lights", "april"):
        assert (by_a[("orb", dataset)]["cycles_m4"]
                > by_a[("fastbrief", dataset)]["cycles_m4"])

    # (b) LK an order of magnitude above block matching; vectorization ~4x.
    by_b = {r["kernel"]: r for r in rows_b}
    assert by_b["lkof"]["cycles_m4"] > 5 * by_b["bbof"]["cycles_m4"]
    speedup = perception_study.vectorization_speedup(rows_b)
    assert 2.5 < speedup < 6.5

    # (b) iiof sits between bbof and lkof.
    assert (by_b["bbof"]["cycles_m4"]
            < by_b["iiof"]["cycles_m4"]
            < by_b["lkof"]["cycles_m4"])
