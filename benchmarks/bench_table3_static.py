"""Regenerates Table III: static metrics (flash size + F/I/M/B mix).

Paper artifact: "Benchmark Suite Static Metrics — Flash Size and Static
Instruction Mix Breakdown" for all 31 kernels on M4/M33/M7.
"""

from repro.analysis import tables


def test_table3_static(benchmark, save_artifact):
    rows = benchmark(tables.table3_static)
    text = tables.render_table3(rows)
    save_artifact("table3_static", text)

    assert len(rows) == 31
    by = {r["kernel"]: r for r in rows}
    # SIFT is M7-only (footprint gate), like the paper's dashes.
    assert by["sift"]["m4"] is None and by["sift"]["m7"] is not None
    # rel-lo-ransac is the largest flash image in the suite.
    assert by["rel-lo-ransac"]["flash"] == max(r["flash"] for r in rows)
    # The soft-float-free kernels are integer-dominated (fastbrief).
    fb = by["fastbrief"]["m4"]
    assert fb["I"] > fb["F"]
    # bee-geom is float-dominated, as in the paper's mix.
    geom = by["bee-geom"]["m4"]
    assert geom["F"] > geom["I"]
