"""Regenerates Figure 5: relative pose estimation and LO-RANSAC analysis
(Case Study 4) — accuracy vs noise (a), solver cycles/peak power (b, c),
RANSAC iterations (d), and LO-RANSAC cycles/peak power (e, f).
"""

import numpy as np

from repro.analysis import relpose_study
from repro.core.config import HarnessConfig

FAST = HarnessConfig(reps=1, warmup_reps=0)


def _render(acc, costs, iters, rcosts) -> str:
    lines = ["Fig 5(a): median rotation error (deg) vs noise"]
    for r in acc:
        lines.append(
            f"  {r['solver']:6s} {r['scalar']:4s} noise={r['noise_px']:.2f}px "
            f"err={r['median_rot_err_deg']:.3f} solved={r['n_solved']}/{r['n_problems']}"
        )
    lines.append("Fig 5(b,c): solver cycles / peak power at 0.1px noise")
    for r in costs:
        lines.append(
            f"  {r['solver']:6s} m4={r['cycles_m4']:10,.0f}cy/{r['pmax_m4_mw']:.0f}mW "
            f"m33={r['cycles_m33']:10,.0f}cy/{r['pmax_m33_mw']:.0f}mW "
            f"m7={r['cycles_m7']:10,.0f}cy/{r['pmax_m7_mw']:.0f}mW"
        )
    lines.append("Fig 5(d): mean LO-RANSAC iterations (25% outliers, 0.5px)")
    for r in iters:
        lines.append(
            f"  {r['minimal']:6s} iters={r['mean_iterations']:6.1f} "
            f"success={r['success_rate']:.2f}"
        )
    lines.append("Fig 5(e,f): LO-RANSAC cycles / peak power by minimal solver")
    for r in rcosts:
        lines.append(
            f"  {r['minimal']:6s} m4={r['cycles_m4']:12,.0f}cy/{r['pmax_m4_mw']:.0f}mW "
            f"m7={r['cycles_m7']:12,.0f}cy/{r['pmax_m7_mw']:.0f}mW"
        )
    return "\n".join(lines)


def test_fig5_relpose(benchmark, save_artifact):
    acc = relpose_study.accuracy_vs_noise(
        noise_levels_px=(0.0, 0.1, 0.5, 1.0), n_problems=30
    )
    costs = relpose_study.solver_costs(config=FAST)
    iters = benchmark.pedantic(
        relpose_study.ransac_iterations, kwargs={"n_problems": 10},
        rounds=1, iterations=1,
    )
    rcosts = relpose_study.ransac_costs(config=FAST)
    save_artifact("fig5_relpose", _render(acc, costs, iters, rcosts))

    acc_by = {(r["solver"], r["scalar"], r["noise_px"]): r for r in acc}
    cost_by = {r["solver"]: r for r in costs}
    iter_by = {r["minimal"]: r for r in iters}
    rcost_by = {r["minimal"]: r for r in rcosts}

    # (a) Errors grow with noise for every solver in f32.
    for solver in relpose_study.SOLVER_KERNELS:
        clean = acc_by[(solver, "f32", 0.0)]["median_rot_err_deg"]
        noisy = acc_by[(solver, "f32", 1.0)]["median_rot_err_deg"]
        assert noisy > clean, solver

    # (a) Double precision is not consistently better at realistic noise.
    wins = sum(
        1 for solver in relpose_study.SOLVER_KERNELS
        if acc_by[(solver, "f64", 0.5)]["median_rot_err_deg"]
        < acc_by[(solver, "f32", 0.5)]["median_rot_err_deg"]
    )
    assert wins < len(relpose_study.SOLVER_KERNELS)

    # (b) Minimal prior-aware solvers are far cheaper than 5pt/8pt.
    assert cost_by["5pt"]["cycles_m4"] > 5 * cost_by["u3pt"]["cycles_m4"]
    assert cost_by["8pt"]["cycles_m4"] > 2 * cost_by["up3pt"]["cycles_m4"]

    # (d) Upright solvers converge in fewer iterations than 5pt.
    assert iter_by["up2pt"]["mean_iterations"] < iter_by["5pt"]["mean_iterations"]
    assert iter_by["u3pt"]["mean_iterations"] < iter_by["5pt"]["mean_iterations"]

    # (e) LO-RANSAC with 5pt costs far more than with upright minimals.
    assert rcost_by["5pt"]["cycles_m4"] > 3 * rcost_by["u3pt"]["cycles_m4"]

    # (f) Peak power varies much less than cycles across solvers.
    pmaxes = [r["pmax_m4_mw"] for r in rcosts]
    assert max(pmaxes) / min(pmaxes) < 1.5
