"""Columnar-pricer bench: Table IV pricing speedup + campaign macro.

Seeds ``BENCH_vecprice.json`` at the repo root with two figures:

* **micro** — the full Table IV pricing grid (every suite kernel x every
  characterization core of both ISAs x cache on/off) priced through
  ``repro.api.price_batch`` with ``vectorize=True`` vs the serial
  per-cell reference (``vectorize=False``).  Wall time is best-of-N on
  warm traces so only the price stage is measured; the headline is the
  vectorized speedup (the ROADMAP target is >= 10x).
* **macro** — a seeded Tier-B scenario campaign run end-to-end with each
  price path, plus the committed campaign baseline from
  ``BENCH_scenarios.json`` for cross-reference.  Campaigns also solve,
  simulate missions, and build reports, so the end-to-end win is
  necessarily smaller than the micro speedup.

Byte-identity is asserted on every run — the vectorized and serial
results must serialize identically and render the identical Table IV
text — so the bench doubles as an equivalence smoke test.  CI runs
``python benchmarks/bench_vecprice.py --quick`` (a reduced grid with a
5x regression gate); a full run regenerates the committed baseline.
"""

import argparse
import dataclasses
import json
import time
from pathlib import Path

from repro.analysis import tables
from repro.api import (
    EngineOptions,
    SweepSpec,
    TraceCache,
    generate_scenarios,
    price_batch,
    run_scenarios,
    sweep,
)
from repro.backends import characterization_archs
from repro.core.config import HarnessConfig
from repro.mcu.cache import CACHE_OFF, CACHE_ON

BASELINE = Path(__file__).parent.parent / "BENCH_vecprice.json"
SCENARIOS_BASELINE = Path(__file__).parent.parent / "BENCH_scenarios.json"

#: Reduced sequence lengths (same as bench_table4_dynamic) keep the
#: one-time solve pass tractable; pricing cost is solve-independent.
OVERRIDES = {
    "mahony": {"n_samples": 100},
    "madgwick": {"n_samples": 100},
    "fourati": {"n_samples": 100},
    "fly-ekf (sync)": {"n_samples": 100},
    "fly-ekf (seq)": {"n_samples": 100},
    "fly-ekf (trunc)": {"n_samples": 100},
    "bee-ceekf": {"n_samples": 30},
    "fly-lqr": {"n_steps": 200},
    "fly-tiny-mpc": {"n_steps": 20},
    "bee-mpc": {"n_steps": 6},
    "bee-geom": {"n_steps": 100},
    "bee-smac": {"n_steps": 120},
}

#: --quick grid: enough kernels to cross every pricing regime (float,
#: int/branch, misfit, quantized CNN) on one core per ISA.
QUICK_KERNELS = [
    "fastbrief", "mahony", "p3p", "5pt", "bee-mpc", "proximity-net-int8",
]
QUICK_ARCH_NAMES = ("m4", "rv32imafc")

REPS = 3
TIMING_ROUNDS = 5
CAMPAIGN_COUNT = 12
CAMPAIGN_SEED = 42


def _grid(quick: bool):
    """(kernels, archs) for the requested mode."""
    archs = list(characterization_archs())
    if quick:
        by_name = {a.name: a for a in archs}
        return QUICK_KERNELS, [by_name[n] for n in QUICK_ARCH_NAMES]
    return list(tables.TABLE_KERNELS) + ["proximity-net-int8"], archs


def _solve_items(kernels, archs):
    """Warm a trace cache with one sweep; expand profiles to price items."""
    cache = TraceCache()
    spec = SweepSpec(
        kernels=kernels,
        archs=archs,
        caches=(CACHE_ON, CACHE_OFF),
        config=HarnessConfig(reps=REPS, warmup_reps=0),
        overrides={k: v for k, v in OVERRIDES.items() if k in kernels},
    )
    sweep(spec, options=EngineOptions(trace_cache=cache))
    profiles = list(cache.profiles().values())
    items = [
        (profile, arch, cache_cfg)
        for profile in profiles
        for arch in archs
        for cache_cfg in (CACHE_ON, CACHE_OFF)
    ]
    return spec, cache, items


def _best_of(fn, rounds: int):
    """(result, best wall seconds) over ``rounds`` calls."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _serialized(results) -> str:
    return json.dumps(
        [dataclasses.asdict(r) for r in results], sort_keys=True
    )


def _micro(quick: bool) -> dict:
    """Table IV pricing: batched vs serial on identical warm traces."""
    kernels, archs = _grid(quick)
    spec, cache, items = _solve_items(kernels, archs)

    vectorized, vec_s = _best_of(
        lambda: price_batch(items, vectorize=True), TIMING_ROUNDS
    )
    serial, ser_s = _best_of(
        lambda: price_batch(items, vectorize=False), TIMING_ROUNDS
    )
    if _serialized(vectorized) != _serialized(serial):
        raise AssertionError(
            "vectorized pricing diverged from the serial reference"
        )

    # The rendered table must also match: re-sweep the warm cache through
    # each engine price path and diff the Table IV text.
    def table_text(vectorize: bool) -> str:
        results = sweep(
            spec,
            options=EngineOptions(trace_cache=cache, vectorize=vectorize),
        )
        return tables.render_table4(results, kernels=kernels)

    if table_text(True) != table_text(False):
        raise AssertionError("Table IV text differs between price paths")

    priced = sum(1 for r in vectorized if r.fits)
    return {
        "grid": {
            "kernels": len(kernels),
            "archs": [a.name for a in archs],
            "cache_states": 2,
            "reps": REPS,
            "cells": len(items),
            "priced_cells": priced,
        },
        "serial_wall_s": round(ser_s, 5),
        "vectorized_wall_s": round(vec_s, 5),
        "serial_us_per_cell": round(ser_s / len(items) * 1e6, 2),
        "vectorized_us_per_cell": round(vec_s / len(items) * 1e6, 2),
        "speedup": round(ser_s / vec_s, 2),
        "byte_identical": True,
        "table4_text_identical": True,
    }


def _macro(quick: bool) -> dict:
    """End-to-end campaign wall time with each price path."""
    sset = generate_scenarios(
        tier="b", count=4 if quick else CAMPAIGN_COUNT, seed=CAMPAIGN_SEED
    )
    # Interleaved rounds: campaigns are solve/mission dominated, so
    # machine drift between back-to-back blocks would swamp the ~1 ms
    # price-stage difference.
    rounds = 1 if quick else 2
    fast_s = slow_s = float("inf")
    fast_report = slow_report = None
    for _ in range(rounds):
        fast_report, dt = _best_of(lambda: run_scenarios(sset, vectorize=True), 1)
        fast_s = min(fast_s, dt)
        slow_report, dt = _best_of(lambda: run_scenarios(sset, vectorize=False), 1)
        slow_s = min(slow_s, dt)
    if json.dumps(fast_report, sort_keys=True) != json.dumps(
        slow_report, sort_keys=True
    ):
        raise AssertionError("campaign reports differ between price paths")

    macro = {
        "scenario_count": len(sset.scenarios),
        "seed": CAMPAIGN_SEED,
        "wall_s_vectorized": round(fast_s, 3),
        "wall_s_serial": round(slow_s, 3),
        "reports_identical": True,
    }
    # Cross-reference the scenario subsystem's committed campaign baseline
    # (solve + mission + report, priced serially when it was seeded).
    if SCENARIOS_BASELINE.exists():
        campaign = json.loads(SCENARIOS_BASELINE.read_text())["campaign"]
        macro["bench_scenarios_baseline"] = {
            "count": campaign["count"],
            "wall_s_jobs1": campaign["wall_s_jobs1"],
        }
    return macro


def run_bench(quick: bool = False, write: bool = True) -> dict:
    baseline = {
        "mode": "quick" if quick else "full",
        "micro_table4_pricing": _micro(quick),
        "macro_campaign": _macro(quick),
    }
    if write:
        BASELINE.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
    return baseline


def test_vecprice_bench(benchmark, save_artifact):
    """Quick-grid speedup gate + byte-identity, artifact for trending.

    Does not touch the committed ``BENCH_vecprice.json`` — only a full
    script run (``python benchmarks/bench_vecprice.py``) reseeds it.
    """
    baseline = benchmark.pedantic(
        lambda: run_bench(quick=True, write=False), rounds=1, iterations=1
    )
    save_artifact(
        "vecprice_bench", json.dumps(baseline, indent=2, sort_keys=True)
    )
    micro = baseline["micro_table4_pricing"]
    assert micro["byte_identical"] and micro["table4_text_identical"]
    assert baseline["macro_campaign"]["reports_identical"]
    # Regression gate: full-grid runs land >= 10x; the reduced grid on a
    # noisy worker must still clear 5x.
    assert micro["speedup"] >= 5.0, micro


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced grid + 5x gate (the CI smoke mode)",
    )
    args = parser.parse_args()
    result = run_bench(quick=args.quick)
    micro = result["micro_table4_pricing"]
    print(json.dumps(result, indent=2, sort_keys=True))
    print(f"wrote {BASELINE}")
    floor = 5.0 if args.quick else 10.0
    if micro["speedup"] < floor:
        raise SystemExit(
            f"speedup {micro['speedup']}x below the {floor}x floor"
        )
