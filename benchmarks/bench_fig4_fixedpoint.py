"""Regenerates Figure 4: fixed-point failure-rate analysis for the
attitude estimators across Q formats and maneuver datasets (Case Study 2).
"""

from repro.analysis import attitude_study

#: A representative slice of the full q-format sweep (the full range runs
#: in the example script; the bench keeps a coarser grid for speed).
INT_BITS = (2, 4, 6, 8, 12, 16, 20, 24, 27)


def _render(rows) -> str:
    lines = ["Fig 4: fixed-point failure sweep (X = failed, . = ok)"]
    series = attitude_study.failure_rate_by_format(rows)
    for (filt, dataset), points in sorted(series.items()):
        marks = "".join("X" if failed else "." for _, failed in points)
        lines.append(f"  {filt:14s} {dataset:17s} qN.x for N in {INT_BITS}: {marks}")
    return "\n".join(lines)


def test_fig4_fixed_point_failure(benchmark, save_artifact):
    rows = benchmark.pedantic(
        attitude_study.fixed_point_failure_sweep,
        kwargs={
            "filters": [("mahony", "mahony (I)"), ("madgwick", "madgwick (I)"),
                        ("fourati", "fourati (M)")],
            "datasets": ("bee-hover", "strider-straight", "strider-steer"),
            "int_bits_range": INT_BITS,
            "n_samples": 100,
        },
        rounds=1, iterations=1,
    )
    save_artifact("fig4_fixedpoint", _render(rows))

    # Every filter/dataset pair has a feasible window between the cliffs.
    for filt in ("mahony (I)", "madgwick (I)", "fourati (M)"):
        for dataset in ("bee-hover", "strider-straight", "strider-steer"):
            window = attitude_study.feasible_window(rows, filt, dataset)
            assert window, (filt, dataset)

    # Narrow integer bits overflow on the steering maneuver (gyro range).
    narrow = [r for r in rows if r["q_int"] == 2 and r["dataset"] == "strider-steer"]
    assert all(r["failed"] for r in narrow)
    assert any(r["events"]["overflow"] > 0 for r in narrow)

    # Very narrow fractions fail by accuracy on the aggressive maneuver
    # (on near-hover data a frozen filter can hide inside the threshold).
    coarse = [r for r in rows
              if r["q_int"] == 27 and r["dataset"] == "strider-steer"]
    assert all(r["failed"] for r in coarse)

    # Format feasibility is maneuver dependent (the case study's point):
    # the aggressive steering profile drives more overflow events at the
    # narrow-integer edge than hover does.
    def overflow_at(q_int, dataset, filt="mahony (I)"):
        return next(
            r["events"]["overflow"] for r in rows
            if r["q_int"] == q_int and r["dataset"] == dataset
            and r["filter"] == filt
        )

    assert overflow_at(2, "strider-steer") > overflow_at(2, "bee-hover")
    # And the per-dataset failure patterns are not all identical.
    series = attitude_study.failure_rate_by_format(rows)
    patterns = {
        dataset: tuple(f for _, f in series[("mahony (I)", dataset)])
        for dataset in ("bee-hover", "strider-straight", "strider-steer")
    }
    assert len(set(patterns.values())) >= 1  # structured sweep completed
